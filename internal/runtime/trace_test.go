package runtime_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
)

// annotatingMachine is an echoMachine that also stages a span annotation in
// every send round, exercising Env.Annotate from both engine modes.
type annotatingMachine struct {
	echoMachine
}

func (m *annotatingMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Tracing() && env.Round() <= m.limit {
		env.Annotate("stage:echo", int64(m.limit))
	}
	return m.echoMachine.Send(env)
}

func annotatingFactory(limit int) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		return &annotatingMachine{echoMachine{limit: limit}}
	}
}

func countEvents(events []obs.Event, t obs.EventType) int {
	n := 0
	for _, e := range events {
		if e.Type == t {
			n++
		}
	}
	return n
}

func TestTraceBasicRun(t *testing.T) {
	g := graph.Line(4)
	rec := obs.NewRecorder(0)
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: annotatingFactory(2),
		Trace:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := rec.Events()
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	if ev[0].Type != obs.EvRunStart || ev[0].Value != 4 || ev[0].Aux != 3 {
		t.Fatalf("first event = %+v, want run-start n=4 m=3", ev[0])
	}
	last := ev[len(ev)-1]
	if last.Type != obs.EvRunEnd || last.Value != int64(res.Rounds) || last.Aux != int64(res.Messages) || last.Err != "" {
		t.Fatalf("last event = %+v, want clean run-end rounds=%d msgs=%d", last, res.Rounds, res.Messages)
	}
	if got := countEvents(ev, obs.EvRoundStart); got != res.Rounds {
		t.Fatalf("round-start events = %d, want %d", got, res.Rounds)
	}
	if got := countEvents(ev, obs.EvRoundEnd); got != res.Rounds {
		t.Fatalf("round-end events = %d, want %d", got, res.Rounds)
	}
	if got := countEvents(ev, obs.EvOutput); got != g.N() {
		t.Fatalf("output events = %d, want %d", got, g.N())
	}
	// Every node annotates in rounds 1..limit: 4 nodes x 2 rounds.
	if got := countEvents(ev, obs.EvSpan); got != 8 {
		t.Fatalf("span events = %d, want 8", got)
	}
	// Spans of one round surface in ascending node order (node-index drain
	// over a line graph with ascending ids).
	var r1spans []int
	for _, e := range ev {
		if e.Type == obs.EvSpan && e.Round == 1 {
			r1spans = append(r1spans, e.Node)
		}
	}
	for i := 1; i < len(r1spans); i++ {
		if r1spans[i] <= r1spans[i-1] {
			t.Fatalf("round-1 spans not in node order: %v", r1spans)
		}
	}
	// Delivered totals in round events match the result.
	var sumMsgs int64
	for _, e := range ev {
		if e.Type == obs.EvRoundEnd {
			sumMsgs += e.Value
		}
	}
	if sumMsgs != int64(res.Messages) {
		t.Fatalf("round-end messages sum to %d, Result.Messages = %d", sumMsgs, res.Messages)
	}
	// Batch events aggregate the same deliveries per sender.
	var sumBatch int64
	for _, e := range ev {
		if e.Type == obs.EvBatch {
			sumBatch += e.Value
		}
	}
	if sumBatch != int64(res.Messages) {
		t.Fatalf("batch messages sum to %d, Result.Messages = %d", sumBatch, res.Messages)
	}
}

// TestTraceParityAcrossEngines: with a fixed seed — including a chaos
// adversary and a crash schedule — the sequential and pool engines emit
// identical event streams modulo wall-clock durations.
func TestTraceParityAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		g := graph.GNP(40, 0.15, rng)
		run := func(parallel bool) []obs.Event {
			rec := obs.NewRecorder(0)
			_, err := runtime.Run(runtime.Config{
				Graph:     g,
				Factory:   annotatingFactory(4),
				Parallel:  parallel,
				Trace:     rec,
				Crashes:   map[int]int{3: 2},
				Adversary: fault.New(fault.Policy{Seed: int64(trial + 1), Drop: 0.2, Duplicate: 0.15, Corrupt: 0.1}),
			})
			if err != nil {
				t.Fatal(err)
			}
			return rec.Events()
		}
		seq := obs.Canonical(run(false))
		par := obs.Canonical(run(true))
		// A wrapped ring would silently shrink the compared window; the
		// recorder marks truncation explicitly and parity must not proceed
		// over a partial trace.
		if countEvents(seq, obs.EvTruncated) != 0 || countEvents(par, obs.EvTruncated) != 0 {
			t.Fatalf("trial %d: trace ring wrapped during parity run; raise the recorder capacity", trial)
		}
		if i, desc, ok := obs.Diff(seq, par); !ok {
			t.Fatalf("trial %d: traces diverge at %d: %s", trial, i, desc)
		}
		// The chaos run must actually have exercised fault events.
		if countEvents(seq, obs.EvFault) == 0 {
			t.Fatalf("trial %d: no fault events in chaos trace", trial)
		}
		if countEvents(seq, obs.EvCrash) != 1 {
			t.Fatalf("trial %d: want exactly one crash event", trial)
		}
	}
}

// TestTraceTerminalRoundEvents: a round that ends in ErrMachinePanic,
// ErrRoundDeadline, or ErrNoTermination still closes the trace with a
// terminal event carrying the error.
func TestTraceTerminalRoundEvents(t *testing.T) {
	requireTerminal := func(t *testing.T, rec *obs.Recorder, runErr error, wantRoundEnd bool) {
		t.Helper()
		ev := rec.Events()
		if len(ev) == 0 {
			t.Fatal("no events recorded")
		}
		last := ev[len(ev)-1]
		if last.Type != obs.EvRunEnd || last.Err == "" {
			t.Fatalf("last event = %+v, want run-end with error", last)
		}
		if !strings.Contains(runErr.Error(), last.Err) && !strings.Contains(last.Err, runErr.Error()) {
			t.Fatalf("run-end error %q does not match run error %q", last.Err, runErr)
		}
		if wantRoundEnd {
			prev := ev[len(ev)-2]
			if prev.Type != obs.EvRoundEnd || prev.Err == "" {
				t.Fatalf("penultimate event = %+v, want terminal round-end with error", prev)
			}
		}
	}

	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("panic/parallel=%v", parallel), func(t *testing.T) {
			rec := obs.NewRecorder(0)
			_, err := runtime.Run(runtime.Config{
				Graph:    graph.Clique(8),
				Parallel: parallel,
				Trace:    rec,
				Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
					if info.Index == 3 {
						return &panicMachine{phase: "receive", round: 2}
					}
					return &panicMachine{phase: "receive", round: -1}
				},
			})
			if !errors.Is(err, runtime.ErrMachinePanic) {
				t.Fatalf("want ErrMachinePanic, got %v", err)
			}
			requireTerminal(t, rec, err, true)
			// The terminal round-end names the aborting round.
			ev := rec.Events()
			if got := ev[len(ev)-2].Round; got != 2 {
				t.Fatalf("terminal round-end round = %d, want 2", got)
			}
		})
	}

	t.Run("deadline", func(t *testing.T) {
		block := make(chan struct{})
		defer close(block)
		rec := obs.NewRecorder(0)
		_, err := runtime.Run(runtime.Config{
			Graph:         graph.Line(4),
			RoundDeadline: 50 * time.Millisecond,
			Trace:         rec,
			Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
				if info.Index == 2 {
					return &wedgedMachine{block: block}
				}
				return &wedgedMachine{block: nil}
			},
		})
		if !errors.Is(err, runtime.ErrRoundDeadline) {
			t.Fatalf("want ErrRoundDeadline, got %v", err)
		}
		requireTerminal(t, rec, err, true)
		// A deadline abort additionally carries the watchdog marker.
		ev := rec.Events()
		found := false
		for _, e := range ev {
			if e.Type == obs.EvDeadline && e.Round == 2 && e.Name == "send" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no deadline event for round 2 send phase in %+v", ev)
		}
	})

	t.Run("no-termination", func(t *testing.T) {
		rec := obs.NewRecorder(0)
		_, err := runtime.Run(runtime.Config{
			Graph:     graph.Line(3),
			MaxRounds: 4,
			Trace:     rec,
			Factory:   func(info runtime.NodeInfo, pred any) runtime.Machine { return &neverTerminates{} },
		})
		if !errors.Is(err, runtime.ErrNoTermination) {
			t.Fatalf("want ErrNoTermination, got %v", err)
		}
		requireTerminal(t, rec, err, false)
		// All four executed rounds closed cleanly; the run-end names round 4.
		ev := rec.Events()
		if got := countEvents(ev, obs.EvRoundEnd); got != 4 {
			t.Fatalf("round-end events = %d, want 4", got)
		}
		if ev[len(ev)-1].Value != 4 {
			t.Fatalf("run-end last round = %d, want 4", ev[len(ev)-1].Value)
		}
	})
}

// neverTerminates participates forever, driving the MaxRounds overrun.
type neverTerminates struct{}

func (m *neverTerminates) Send(env *runtime.Env) []runtime.Out { return nil }

func (m *neverTerminates) Receive(env *runtime.Env, inbox []runtime.Msg) {}

// dropEveryOther deterministically drops every second intercepted message
// and duplicates every fifth — a fixed adversary for accounting assertions.
type dropEveryOther struct{ calls int }

func (a *dropEveryOther) Crashes(n int) map[int]int { return nil }

func (a *dropEveryOther) Intercept(round, from, to int, payload runtime.Payload) runtime.Fate {
	a.calls++
	if a.calls%2 == 0 {
		return runtime.Fate{Drop: true}
	}
	if a.calls%5 == 0 {
		return runtime.Fate{Extra: 1}
	}
	return runtime.Fate{}
}

// TestDeliveredVsInjectedAccounting: Messages/Bits count only delivered
// traffic; dropped and duplicated traffic appear on their own ledgers.
func TestDeliveredVsInjectedAccounting(t *testing.T) {
	g := graph.Clique(6)
	var stats []runtime.RoundStats
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   echoFactory(3),
		Adversary: &dropEveryOther{},
		Stats:     func(rs runtime.RoundStats) { stats = append(stats, rs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := runtime.Run(runtime.Config{Graph: g, Factory: echoFactory(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 || res.Injected == 0 {
		t.Fatalf("adversary had no effect: %+v", res)
	}
	// Conservation: intercepted = delivered originals + dropped. Delivered
	// includes the injected duplicates on top of surviving originals.
	if res.Messages-res.Injected+res.Dropped != clean.Messages {
		t.Fatalf("ledger mismatch: delivered=%d injected=%d dropped=%d, clean=%d",
			res.Messages, res.Injected, res.Dropped, clean.Messages)
	}
	// echoPayload is 16 bits; dropped bits account each dropped message.
	if res.DroppedBits != 16*res.Dropped {
		t.Fatalf("DroppedBits = %d, want %d", res.DroppedBits, 16*res.Dropped)
	}
	var sumDropped, sumInjected, sumMsgs int
	for _, rs := range stats {
		sumDropped += rs.Dropped
		sumInjected += rs.Injected
		sumMsgs += rs.Messages
		if rs.InjectedBits != 16*rs.Injected {
			t.Fatalf("round %d InjectedBits = %d, want %d", rs.Round, rs.InjectedBits, 16*rs.Injected)
		}
	}
	if sumDropped != res.Dropped || sumInjected != res.Injected || sumMsgs != res.Messages {
		t.Fatalf("per-round stats do not sum to totals: dropped %d/%d injected %d/%d msgs %d/%d",
			sumDropped, res.Dropped, sumInjected, res.Injected, sumMsgs, res.Messages)
	}
}

// TestTraceDisabledNoNotes: without a recorder, Env.Annotate is a no-op and
// Tracing reports false (the allocation-free fast path).
func TestTraceDisabledNoNotes(t *testing.T) {
	seen := false
	_, err := runtime.Run(runtime.Config{
		Graph: graph.Line(2),
		Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
			return &probeTracing{seen: &seen}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen {
		t.Fatal("Env.Tracing() reported true without a recorder")
	}
}

type probeTracing struct{ seen *bool }

func (m *probeTracing) Send(env *runtime.Env) []runtime.Out {
	if env.Tracing() {
		*m.seen = true
	}
	env.Annotate("stage:noop", 0) // must be a no-op
	env.Output(0)
	env.Terminate()
	return nil
}

func (m *probeTracing) Receive(env *runtime.Env, inbox []runtime.Msg) {}
