package shard

// Batch is one shard's boundary traffic to one destination shard for one
// round, in the sending shard's canonical emission order (its senders by
// ascending identifier, each sender's messages in send order).
type Batch[M any] struct {
	// Src is the sending shard.
	Src int
	// Msgs are the boundary messages; nil when the pair exchanged nothing.
	Msgs []M
}

// Exchange is the typed-channel boundary fabric between S shard engines.
// Each shard owns one inbound channel; a round's exchange is: every shard
// Posts exactly one batch (possibly empty) to every other shard, then
// Collects its S-1 inbound batches. Collect hands the batches back indexed
// by source shard, so the consumer drains them in ascending-source canonical
// order regardless of goroutine arrival timing — the ordering half of the
// engine's cross-shard determinism contract (the other half is that slots
// are assigned before the batches ship).
//
// The channels are buffered to hold a full round of traffic, so the
// post-then-collect protocol cannot deadlock: no Post ever blocks.
type Exchange[M any] struct {
	s  int
	ch []chan Batch[M]
	// pend[dst] is dst's reusable collection frame, indexed by source shard.
	pend [][]Batch[M]
}

// NewExchange builds the fabric for s shards.
func NewExchange[M any](s int) *Exchange[M] {
	x := &Exchange[M]{
		s:    s,
		ch:   make([]chan Batch[M], s),
		pend: make([][]Batch[M], s),
	}
	for i := range x.ch {
		x.ch[i] = make(chan Batch[M], s)
		x.pend[i] = make([]Batch[M], s)
	}
	return x
}

// S reports the shard count the fabric was built for.
func (x *Exchange[M]) S() int { return x.s }

// Post ships src's boundary batch for the round to dst. The slice is handed
// over to dst until the next round barrier: the caller must not touch it
// again before its next Post to dst. Every (src, dst) pair with src ≠ dst
// must post exactly once per round, empty or not — Collect counts batches,
// not messages.
//
//dgp:hotpath
func (x *Exchange[M]) Post(src, dst int, msgs []M) {
	x.ch[dst] <- Batch[M]{Src: src, Msgs: msgs}
}

// Collect receives the round's S-1 inbound batches for shard dst and
// returns them indexed by source shard (the dst slot stays empty), giving a
// canonical ascending-source consumption order. The returned frame is
// reused by dst's next Collect.
//
//dgp:hotpath
func (x *Exchange[M]) Collect(dst int) []Batch[M] {
	p := x.pend[dst]
	p[dst] = Batch[M]{}
	for k := 0; k < x.s-1; k++ {
		b := <-x.ch[dst]
		p[b.Src] = b
	}
	return p
}
