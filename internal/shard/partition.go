// Package shard partitions the communication graph for the engine's sharded
// execution mode (Config.Shards in internal/runtime): S shard engines each
// own a disjoint slice of the node set, run the per-node phases
// independently, and exchange only boundary-edge message batches at the
// round barrier — cross-shard traffic tracks the edge cut, not n.
//
// The package provides the two partitioning strategies over the engine's
// CSR arrays — contiguous index ranges (the deterministic default) and a
// seeded greedy edge-cut heuristic — plus the typed-channel Exchange fabric
// the shard engines trade boundary batches over. Both partitioners are pure
// functions of their inputs: Contiguous of (n, s) alone, GreedyEdgeCut of
// (n, off, adj, s, seed), so a partition is reproducible from the run
// configuration and the engine's determinism contract (results and traces
// byte-identical for every S) extends to partitioned runs.
package shard

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrPartition classifies every invalid-partition error this package
// builds. The engine wraps partition failures in runtime.ErrConfig at the
// Config boundary (this package cannot import runtime's sentinels — the
// engine imports shard); errors.Is(err, shard.ErrPartition) classifies
// them below that boundary.
var ErrPartition = errors.New("shard: invalid partition")

// Partition is a node→shard assignment over an n-node graph.
type Partition struct {
	// S is the shard count.
	S int
	// Of maps node index to its owning shard, len n.
	Of []int32
	// Nodes lists each shard's node indexes in ascending order.
	Nodes [][]int32
}

// New builds a Partition from an explicit node→shard assignment, deriving
// the per-shard node lists. The assignment is validated: s must be at least
// 1 and every entry in [0, s).
func New(s int, of []int32) (*Partition, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w: %d shards; need at least 1", ErrPartition, s)
	}
	for i, sh := range of {
		if sh < 0 || int(sh) >= s {
			return nil, fmt.Errorf("%w: node %d assigned to shard %d; range is [0, %d)", ErrPartition, i, sh, s)
		}
	}
	return build(s, of), nil
}

// build derives the per-shard node lists from a known-valid assignment.
func build(s int, of []int32) *Partition {
	counts := make([]int, s)
	for _, sh := range of {
		counts[sh]++
	}
	p := &Partition{S: s, Of: of, Nodes: make([][]int32, s)}
	for sh := range p.Nodes {
		p.Nodes[sh] = make([]int32, 0, counts[sh])
	}
	for i, sh := range of {
		p.Nodes[sh] = append(p.Nodes[sh], int32(i))
	}
	return p
}

// Contiguous splits n node indexes into s contiguous ranges of near-equal
// size (the first n mod s shards hold one extra node). It is the engine's
// default strategy: zero-knowledge, deterministic, and for generators that
// lay out edges locally (rings, grids) already a small edge cut.
func Contiguous(n, s int) *Partition {
	if s < 1 {
		s = 1
	}
	of := make([]int32, n)
	base, extra := n/s, n%s
	i := 0
	for sh := 0; sh < s; sh++ {
		size := base
		if sh < extra {
			size++
		}
		for k := 0; k < size; k++ {
			of[i] = int32(sh)
			i++
		}
	}
	return build(s, of)
}

// GreedyEdgeCut assigns nodes to s shards with a seeded greedy heuristic
// over the CSR arrays (off, adj): nodes are visited in a seeded random
// order, and each is placed on the shard already holding most of its placed
// neighbors among the shards still under the balance cap ⌈n/s⌉; ties break
// toward the lighter load, then the lower shard index, and a node with no
// placed neighbors lands on the least-loaded shard. The result is balanced
// to within one node of even and deterministic for a fixed
// (n, off, adj, s, seed).
func GreedyEdgeCut(n int, off, adj []int32, s int, seed int64) *Partition {
	if s < 1 {
		s = 1
	}
	of := make([]int32, n)
	for i := range of {
		of[i] = -1
	}
	order := rand.New(rand.NewSource(seed)).Perm(n)
	limit := (n + s - 1) / s
	load := make([]int, s)
	gain := make([]int, s)
	for _, i := range order {
		for sh := range gain {
			gain[sh] = 0
		}
		for _, j := range adj[off[i]:off[i+1]] {
			if sh := of[j]; sh >= 0 {
				gain[sh]++
			}
		}
		best := -1
		for sh := 0; sh < s; sh++ {
			if load[sh] >= limit {
				continue
			}
			if best < 0 || gain[sh] > gain[best] ||
				(gain[sh] == gain[best] && load[sh] < load[best]) {
				best = sh
			}
		}
		// best is always found: fewer than n ≤ s·limit nodes are placed, so
		// some shard is under the cap.
		of[i] = int32(best)
		load[best]++
	}
	return build(s, of)
}

// Validate checks the partition against an n-node graph: the assignment
// covers exactly n nodes, every shard index is in range, and the per-shard
// node lists are consistent with Of (every node listed exactly once by its
// owner, in ascending order).
func (p *Partition) Validate(n int) error {
	if p.S < 1 {
		return fmt.Errorf("%w: %d shards; need at least 1", ErrPartition, p.S)
	}
	if len(p.Of) != n {
		return fmt.Errorf("%w: assignment covers %d nodes; graph has %d", ErrPartition, len(p.Of), n)
	}
	if len(p.Nodes) != p.S {
		return fmt.Errorf("%w: %d node lists for %d shards", ErrPartition, len(p.Nodes), p.S)
	}
	total := 0
	for sh, nodes := range p.Nodes {
		prev := int32(-1)
		for _, i := range nodes {
			if i < 0 || int(i) >= n {
				return fmt.Errorf("%w: shard %d lists node %d; range is [0, %d)", ErrPartition, sh, i, n)
			}
			if i <= prev {
				return fmt.Errorf("%w: shard %d node list not strictly ascending at node %d", ErrPartition, sh, i)
			}
			if p.Of[i] != int32(sh) {
				return fmt.Errorf("%w: shard %d lists node %d owned by shard %d", ErrPartition, sh, i, p.Of[i])
			}
			prev = i
		}
		total += len(nodes)
	}
	if total != n {
		return fmt.Errorf("%w: node lists cover %d of %d nodes", ErrPartition, total, n)
	}
	return nil
}

// CutEdges counts the directed CSR edges whose endpoints live on different
// shards (an undirected edge crossing the cut contributes twice). This is
// the boundary traffic bound: a round's cross-shard message count is at most
// the cut times the adversary's duplication factor.
func (p *Partition) CutEdges(off, adj []int32) int {
	cut := 0
	for i := 0; i < len(off)-1; i++ {
		for _, j := range adj[off[i]:off[i+1]] {
			if p.Of[i] != p.Of[j] {
				cut++
			}
		}
	}
	return cut
}

// BoundaryNodes counts the nodes with at least one neighbor on another
// shard — the nodes whose inbox regions the exchange phase can touch.
func (p *Partition) BoundaryNodes(off, adj []int32) int {
	nodes := 0
	for i := 0; i < len(off)-1; i++ {
		for _, j := range adj[off[i]:off[i+1]] {
			if p.Of[i] != p.Of[j] {
				nodes++
				break
			}
		}
	}
	return nodes
}
