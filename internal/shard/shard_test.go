package shard

import (
	"sync"
	"testing"
)

// ringCSR builds the CSR arrays of an n-cycle (each node adjacent to its
// two ring neighbors), enough topology for partitioner tests without
// importing the graph package.
func ringCSR(n int) (off, adj []int32) {
	off = make([]int32, n+1)
	adj = make([]int32, 0, 2*n)
	for i := 0; i < n; i++ {
		off[i] = int32(len(adj))
		prev, next := (i+n-1)%n, (i+1)%n
		if prev != i {
			adj = append(adj, int32(prev))
		}
		if next != i && next != prev {
			adj = append(adj, int32(next))
		}
	}
	off[n] = int32(len(adj))
	return off, adj
}

func TestContiguousBalanced(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{0, 1}, {0, 4}, {1, 1}, {7, 3}, {12, 4}, {100, 8}, {5, 8},
	} {
		p := Contiguous(tc.n, tc.s)
		if p.S != tc.s {
			t.Fatalf("Contiguous(%d,%d): S = %d", tc.n, tc.s, p.S)
		}
		if err := p.Validate(tc.n); err != nil {
			t.Fatalf("Contiguous(%d,%d): %v", tc.n, tc.s, err)
		}
		lo, hi := tc.n, 0
		for _, nodes := range p.Nodes {
			if len(nodes) < lo {
				lo = len(nodes)
			}
			if len(nodes) > hi {
				hi = len(nodes)
			}
		}
		if tc.n > 0 && hi-lo > 1 {
			t.Fatalf("Contiguous(%d,%d): shard sizes spread %d..%d", tc.n, tc.s, lo, hi)
		}
		// Contiguity: every shard's nodes form one index interval.
		for sh, nodes := range p.Nodes {
			for k := 1; k < len(nodes); k++ {
				if nodes[k] != nodes[k-1]+1 {
					t.Fatalf("Contiguous(%d,%d): shard %d not contiguous", tc.n, tc.s, sh)
				}
			}
		}
	}
}

func TestContiguousRingCut(t *testing.T) {
	off, adj := ringCSR(100)
	p := Contiguous(100, 4)
	// A ring cut into 4 arcs crosses the cut at 4 places, 2 directed edges
	// each.
	if got := p.CutEdges(off, adj); got != 8 {
		t.Fatalf("ring cut edges = %d, want 8", got)
	}
	if got := p.BoundaryNodes(off, adj); got != 8 {
		t.Fatalf("ring boundary nodes = %d, want 8", got)
	}
}

func TestGreedyEdgeCutDeterministicAndBalanced(t *testing.T) {
	off, adj := ringCSR(97)
	a := GreedyEdgeCut(97, off, adj, 5, 42)
	b := GreedyEdgeCut(97, off, adj, 5, 42)
	if err := a.Validate(97); err != nil {
		t.Fatal(err)
	}
	for i := range a.Of {
		if a.Of[i] != b.Of[i] {
			t.Fatalf("same seed, different assignment at node %d", i)
		}
	}
	limit := (97 + 4) / 5
	for sh, nodes := range a.Nodes {
		if len(nodes) > limit {
			t.Fatalf("shard %d holds %d nodes; balance cap is %d", sh, len(nodes), limit)
		}
	}
	// The greedy heuristic should not be worse than a blind split on a ring.
	if cut := a.CutEdges(off, adj); cut > 97*2/2 {
		t.Fatalf("greedy cut %d larger than half the edges", cut)
	}
}

func TestNewRejectsBadAssignments(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("New(0, nil) accepted")
	}
	if _, err := New(2, []int32{0, 2}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	p, err := New(2, []int32{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err == nil {
		t.Fatal("Validate accepted wrong n")
	}
}

func TestExchangeCanonicalOrder(t *testing.T) {
	const s = 4
	x := NewExchange[int](s)
	var wg sync.WaitGroup
	got := make([][]int, s)
	for me := 0; me < s; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			for d := 0; d < s; d++ {
				if d == me {
					continue
				}
				// Shard me ships one message, its own index, to every peer.
				x.Post(me, d, []int{me})
			}
			var seen []int
			for _, b := range x.Collect(me) {
				seen = append(seen, b.Msgs...)
			}
			got[me] = seen
		}(me)
	}
	wg.Wait()
	for me := 0; me < s; me++ {
		want := make([]int, 0, s-1)
		for src := 0; src < s; src++ {
			if src != me {
				want = append(want, src)
			}
		}
		if len(got[me]) != len(want) {
			t.Fatalf("shard %d collected %v, want %v", me, got[me], want)
		}
		for k := range want {
			if got[me][k] != want[k] {
				t.Fatalf("shard %d collected %v, want ascending-source %v", me, got[me], want)
			}
		}
	}
}

func TestExchangeFrameReuse(t *testing.T) {
	x := NewExchange[int](2)
	x.Post(1, 0, []int{7})
	first := x.Collect(0)
	x.Post(1, 0, nil)
	second := x.Collect(0)
	if &first[0] != &second[0] {
		t.Fatal("Collect frames not reused")
	}
	if second[1].Msgs != nil {
		t.Fatalf("stale batch survived: %v", second[1].Msgs)
	}
}
