// Package stats provides the summary statistics the randomized experiments
// report: mean, standard deviation, extremes, and percentiles over round
// counts collected from repeated seeded runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max int
	P50, P90 int
}

// Summarize computes a Summary of the sample (empty samples yield zeros).
func Summarize(sample []int) Summary {
	s := Summary{N: len(sample)}
	if s.N == 0 {
		return s
	}
	sorted := append([]int(nil), sample...)
	sort.Ints(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	sum := 0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = float64(sum) / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range sorted {
			d := float64(v) - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// percentile returns the value at quantile q of a sorted sample (nearest
// rank).
func percentile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean %.2f ± %.2f [%d..%d] p50 %d p90 %d (n=%d)",
		s.Mean, s.Std, s.Min, s.Max, s.P50, s.P90, s.N)
}
