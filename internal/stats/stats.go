// Package stats provides the summary statistics the randomized experiments
// report: mean, standard deviation, extremes, and percentiles over round
// counts collected from repeated seeded runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max int
	P50, P90 int
}

// Summarize computes a Summary of the sample (empty samples yield zeros).
func Summarize(sample []int) Summary {
	s := Summary{N: len(sample)}
	if s.N == 0 {
		return s
	}
	sorted := append([]int(nil), sample...)
	sort.Ints(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	sum := 0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = float64(sum) / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range sorted {
			d := float64(v) - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// percentile returns the value at quantile q of a sorted sample (nearest
// rank).
func percentile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[rankIndex(len(sorted), q)]
}

// rankIndex is the nearest-rank index of quantile q in a sample of size n.
func rankIndex(n int, q float64) int {
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// FloatSummary describes a sample of float64 observations — the noise model
// behind the performance ledger (internal/perf): wall-time samples are
// reduced to these summaries, and ledger comparisons treat deltas within a
// few Std of the baseline mean as noise rather than regression.
type FloatSummary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
	Sum           float64
}

// SummarizeFloats computes a FloatSummary of the sample (empty samples yield
// zeros; the input is not modified).
func SummarizeFloats(sample []float64) FloatSummary {
	s := FloatSummary{N: len(sample)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P50 = sorted[rankIndex(s.N, 0.50)]
	s.P90 = sorted[rankIndex(s.N, 0.90)]
	s.P99 = sorted[rankIndex(s.N, 0.99)]
	for _, v := range sorted {
		s.Sum += v
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range sorted {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders the float summary compactly.
func (s FloatSummary) String() string {
	return fmt.Sprintf("mean %.4g ± %.4g [%.4g..%.4g] p50 %.4g p90 %.4g (n=%d)",
		s.Mean, s.Std, s.Min, s.Max, s.P50, s.P90, s.N)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean %.2f ± %.2f [%d..%d] p50 %d p90 %d (n=%d)",
		s.Mean, s.Std, s.Min, s.Max, s.P50, s.P90, s.N)
}
