package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSummarizeKnown(t *testing.T) {
	s := stats.Summarize([]int{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.P50 != 3 || s.P90 != 5 {
		t.Errorf("percentiles: p50=%d p90=%d", s.P50, s.P90)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := stats.Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty: %+v", s)
	}
	s := stats.Summarize([]int{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P90 != 7 {
		t.Errorf("singleton: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestQuickSummarizeInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%50) + 1
		rng := rand.New(rand.NewSource(seed))
		sample := make([]int, n)
		for i := range sample {
			sample[i] = rng.Intn(1000)
		}
		s := stats.Summarize(sample)
		if s.Min > s.P50 || s.P50 > s.P90 || s.P90 > s.Max {
			return false
		}
		if s.Mean < float64(s.Min) || s.Mean > float64(s.Max) {
			return false
		}
		return s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
