package tree

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/runtime"
)

// CVIters returns the number of Cole–Vishkin bit-reduction rounds needed to
// shrink a palette of size d to at most 6 colors: k ← 2·⌈log₂ k⌉ until
// k ≤ 6, i.e. O(log* d) iterations.
func CVIters(d int) int {
	k := d
	iters := 0
	for k > 6 {
		k = 2 * ceilLog2(k)
		iters++
	}
	return iters
}

// CVRounds returns the full round bound of the 3-coloring algorithm:
// CVIters(d) bit-reduction rounds plus six shift-down/recolor rounds
// (two per eliminated color 6, 5, 4).
func CVRounds(d int) int { return CVIters(d) + 6 }

func ceilLog2(k int) int {
	if k <= 1 {
		return 1
	}
	return bits.Len(uint(k - 1))
}

// treeColor announces the sender's current color.
type treeColor struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (m treeColor) Bits() int { return bits.Len(uint(m.C)) + 1 }

// ColoringPart1 returns the Goldberg–Plotkin–Shannon 3-coloring of rooted
// trees (Cole–Vishkin bit reduction to 6 colors, then three shift-down and
// recolor steps) as the fault-tolerant first part of the Corollary 15
// reference: it runs exactly CVRounds(d) rounds, stores the final color
// (1-based, in {1, 2, 3}) in the node's shared memory, and yields.
//
// Every recoloring decision uses only the colors heard in the current round,
// so a node whose parent has terminated or crashed simply proceeds as the
// root of its subtree; the coloring stays proper on the survivors.
func ColoringPart1() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		m := mem.(*Memory)
		return &cvMachine{
			mem:   m,
			iters: CVIters(info.D),
			total: CVRounds(info.D),
			color: info.ID - 1,
		}
	}
}

type cvMachine struct {
	mem    *Memory
	iters  int
	total  int
	color  int
	shadow int // pre-shift color, the common color of this node's children
}

func (m *cvMachine) Send(c *core.StageCtx) []runtime.Out {
	return runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), treeColor{C: m.color})
}

// parentColor extracts the parent's announced color; ok is false when the
// node has no live parent and must act as a root.
func (m *cvMachine) parentColor(inbox []runtime.Msg) (int, bool) {
	if m.mem.ParentID == 0 {
		return 0, false
	}
	for _, msg := range inbox {
		if msg.From != m.mem.ParentID {
			continue
		}
		if tc, ok := msg.Payload.(treeColor); ok {
			return tc.C, true
		}
	}
	return 0, false
}

func (m *cvMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	r := c.StageRound()
	pc, hasParent := m.parentColor(inbox)
	switch {
	case r <= m.iters:
		if !hasParent {
			// Roots reduce against a virtual parent color differing in the
			// lowest bit.
			pc = m.color ^ 1
		}
		i := bits.TrailingZeros(uint(m.color ^ pc))
		m.color = 2*i + (m.color>>uint(i))&1
	default:
		step := r - m.iters // 1..6: three (shift, recolor) pairs
		if step%2 == 1 {
			// Shift down: adopt the parent's color; roots switch to the
			// smallest small color different from their own.
			m.shadow = m.color
			if hasParent {
				m.color = pc
			} else {
				m.color = smallestOutside3(m.shadow, -1)
			}
		} else {
			// Recolor the class being eliminated: 6, then 5, then 4
			// (0-based 5, 4, 3).
			target := 6 - step/2 // 5, 4, 3
			if m.color == target {
				parent := -1
				if hasParent {
					parent = pc
				}
				m.color = smallestOutside3(m.shadow, parent)
			}
		}
	}
	if r >= m.total {
		m.mem.StoreColor(m.color+1, 3)
		c.Yield()
	}
}

// smallestOutside3 returns the least color in {0, 1, 2} distinct from both
// arguments (-1 means no constraint).
func smallestOutside3(a, b int) int {
	for v := 0; v < 3; v++ {
		if v != a && v != b {
			return v
		}
	}
	return 0
}

// join is sent by a color-2 node entering the independent set to its color-3
// neighbors in the final round.
type join struct{}

// Bits sizes the message for CONGEST accounting.
func (join) Bits() int { return 1 }

// MISFrom3Coloring returns part 2 of the Corollary 15 reference: the
// two-round algorithm that converts the stored 3-coloring into a maximal
// independent set — color 1 joins immediately, its neighbors leave; active
// color-2 nodes join and poke their color-3 neighbors; the remaining color-3
// nodes join exactly when unpoked.
func MISFrom3Coloring() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &from3Machine{mem: mem.(*Memory), nbrColor: map[int]int{}}
	}
}

type from3Machine struct {
	mem      *Memory
	nbrColor map[int]int
}

func (m *from3Machine) Send(c *core.StageCtx) []runtime.Out {
	switch c.StageRound() {
	case 1:
		outs := runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), treeColor{C: m.mem.Color})
		if m.mem.Color == 1 {
			c.Output(1)
		}
		return outs
	default:
		if m.mem.Color == 2 {
			var outs []runtime.Out
			for _, nb := range m.mem.ActiveNeighbors(c.Info()) {
				if m.nbrColor[nb] == 3 {
					outs = append(outs, runtime.Out{To: nb, Payload: join{}})
				}
			}
			c.Output(1)
			return outs
		}
		return nil
	}
}

func (m *from3Machine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch c.StageRound() {
	case 1:
		sawOne := false
		for _, msg := range inbox {
			if tc, ok := msg.Payload.(treeColor); ok {
				m.nbrColor[msg.From] = tc.C
				if tc.C == 1 {
					sawOne = true
				}
			}
		}
		if sawOne {
			c.Output(0)
		}
	default:
		for _, msg := range inbox {
			if _, ok := msg.Payload.(join); ok {
				c.Output(0)
				return
			}
		}
		c.Output(1)
	}
}

// ParallelColoring is the Corollary 15 Parallel Template on rooted trees:
// the rooted-tree initialization, Algorithm 6 in parallel with the
// fault-tolerant 3-coloring (budget rounded to even so the Algorithm 6 lane
// is interrupted at an extendable boundary and no clean-up is needed), then
// the two-round conversion. Round complexity min{⌈η_t/2⌉+5, O(log* d)} and
// ⌈η_t/2⌉-degrading.
func ParallelColoring(r *Rooted) runtime.Factory {
	return core.Parallel(core.ParallelSpec{
		Mem: NewMemory(r),
		B:   Init(),
		U:   RootsAndLeaves(0).New,
		R1:  ColoringPart1(),
		R1Budget: func(info runtime.NodeInfo) int {
			return core.AlignUp(CVRounds(info.D), 2)
		},
		C:  nil,
		R2: MISFrom3Coloring(),
	})
}
