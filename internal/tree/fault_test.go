package tree_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tree"
	"repro/internal/verify"
)

// cvProbe wraps ColoringPart1 so the stored color becomes the node's output,
// letting us run the GPS 3-coloring standalone (with and without crashes).
func cvProbe(r *tree.Rooted) runtime.Factory {
	emit := core.Stage{
		Name: "emit",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return emitColor{mem: mem.(*tree.Memory)}
		},
	}
	part1 := core.Stage{Name: "cv", New: tree.ColoringPart1()}
	return core.Sequence(func(info runtime.NodeInfo, pred any) any {
		return tree.NewMemory(r)(info, pred)
	}, part1, emit)
}

type emitColor struct{ mem *tree.Memory }

func (m emitColor) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m emitColor) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	c.Output(m.mem.Color)
}

// TestGPSThreeColoring: the standalone CV/GPS algorithm 3-colors rooted
// trees of every shape within its declared bound.
func TestGPSThreeColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	trees := map[string]*tree.Rooted{
		"single":   tree.DirectedLine(1),
		"line50":   tree.DirectedLine(50),
		"rand80":   tree.RandomRooted(80, rng),
		"star":     tree.RootAt(graph.Star(15), 0),
		"starleaf": tree.RootAt(graph.Star(15), 5),
		"cat":      tree.RootAt(graph.Caterpillar(10, 3), 0),
		"forest":   tree.RootAt(graph.DisjointPaths(4, 6), 0),
	}
	for name, r := range trees {
		t.Run(name, func(t *testing.T) {
			res, err := runtime.Run(runtime.Config{Graph: r.G, Factory: cvProbe(r)})
			if err != nil {
				t.Fatal(err)
			}
			colors := make([]int, r.G.N())
			for i, o := range res.Outputs {
				colors[i] = o.(int)
			}
			if err := verify.VColorWithPalette(r.G, colors, 3); err != nil {
				t.Fatal(err)
			}
			if res.Rounds > tree.CVRounds(r.G.D())+1 {
				t.Errorf("rounds %d > CV bound %d", res.Rounds, tree.CVRounds(r.G.D()))
			}
		})
	}
}

// TestGPSFaultTolerance crashes nodes mid-coloring; the survivors' colors
// must remain a proper 3-coloring of the surviving forest (crashed parents
// turn their children into roots).
func TestGPSFaultTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 25; trial++ {
		r := tree.RandomRooted(40, rng)
		total := tree.CVRounds(r.G.D())
		crashes := map[int]int{}
		for i := 0; i < r.G.N(); i++ {
			if rng.Float64() < 0.2 {
				crashes[i] = 1 + rng.Intn(total+1)
			}
		}
		res, err := runtime.Run(runtime.Config{Graph: r.G, Factory: cvProbe(r), Crashes: crashes})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var survivors []int
		for i := 0; i < r.G.N(); i++ {
			if res.Outputs[i] != nil {
				survivors = append(survivors, i)
			}
		}
		sub, orig := r.G.InducedSubgraph(survivors)
		colors := make([]int, sub.N())
		for i, oldIdx := range orig {
			colors[i] = res.Outputs[oldIdx].(int)
		}
		if err := verify.VColorPartial(sub, colors, 3); err != nil {
			t.Fatalf("trial %d (%d crashed): %v", trial, len(crashes), err)
		}
	}
}

// TestRootsLeavesExtendableAtEvenRounds: Algorithm 6's partial solution is
// extendable at the end of every even round (needed for the Parallel
// Template with an even budget, Corollary 15).
func TestRootsLeavesExtendableAtEvenRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		r := tree.RandomRooted(60, rng)
		_, err := runtime.Run(runtime.Config{
			Graph:   r.G,
			Factory: tree.Solo(r, tree.RootsAndLeaves(0)),
			Observer: func(round int, outputs []any, active []bool) {
				if round%2 != 0 {
					return
				}
				partial := make([]int, len(outputs))
				for i := range outputs {
					if active[i] {
						partial[i] = verify.Undecided
					} else if v, ok := outputs[i].(int); ok {
						partial[i] = v
					} else {
						partial[i] = verify.Undecided
					}
				}
				if err := verify.MISPartialExtendable(r.G, partial); err != nil {
					t.Errorf("trial %d round %d: %v", trial, round, err)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTreeInitMonochromatic: after the rooted-tree initialization, the
// active components are monochromatic (Section 9.2).
func TestTreeInitMonochromatic(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 20; trial++ {
		r := tree.RandomRooted(50, rng)
		preds := make([]int, r.G.N())
		for i := range preds {
			preds[i] = rng.Intn(2)
		}
		anyPreds := make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
		var activeAt4 []bool
		_, err := runtime.Run(runtime.Config{
			Graph:       r.G,
			Factory:     tree.SimpleRootsLeaves(r),
			Predictions: anyPreds,
			Observer: func(round int, outputs []any, active []bool) {
				if round == 4 {
					activeAt4 = append([]bool(nil), active...)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if activeAt4 == nil {
			continue // everything terminated before round 4
		}
		for u := 0; u < r.G.N(); u++ {
			if !activeAt4[u] {
				continue
			}
			for _, v := range r.G.Neighbors(u) {
				if activeAt4[v] && preds[u] != preds[v] {
					t.Fatalf("trial %d: active nodes %d (pred %d) and %d (pred %d) adjacent",
						trial, r.G.ID(u), preds[u], r.G.ID(int(v)), preds[v])
				}
			}
		}
	}
}
