package tree

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/predict"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func init() { problem.Register(descriptor()) }

// rooted asserts the BuildCtx auxiliary value to the rooted forest the tree
// algorithms close over.
func rooted(aux any) (*Rooted, error) {
	r, ok := aux.(*Rooted)
	if !ok || r == nil {
		return nil, fmt.Errorf("tree: auxiliary instance data must be *tree.Rooted, got %T", aux)
	}
	return r, nil
}

// descriptor registers rooted-tree MIS (Section 9.2). The problem carries
// auxiliary instance data — the rooted forest — beyond the graph: NewAux
// orients an acyclic graph at node 0, and typed entry points may pass their
// own *Rooted. Healing runs through the general MIS machinery: an MIS of the
// underlying graph is what the tree algorithms compute too.
func descriptor() problem.Descriptor {
	return problem.Descriptor{
		Name:        "tree",
		Doc:         "rooted-tree MIS (Section 9.2)",
		OutputLabel: "in-set",
		NewAux: func(g *graph.Graph) (any, error) {
			if g.M() >= g.N() {
				return nil, fmt.Errorf("tree: requires an acyclic graph")
			}
			return RootAt(g, 0), nil
		},
		Preds: func(g *graph.Graph, aux any, k int, seed int64) any {
			return predict.FlipBits(predict.PerfectMIS(g), k, rand.New(rand.NewSource(seed)))
		},
		EncodePreds: problem.IntPredCodec("tree"),
		Errors: func(g *graph.Graph, aux any, preds any) (string, error) {
			r, err := rooted(aux)
			if err != nil {
				return "", err
			}
			p, ok := preds.([]int)
			if !ok {
				return "", fmt.Errorf("tree: predictions must be []int, got %T", preds)
			}
			return fmt.Sprintf("eta_t=%d", EtaT(r, p, predict.MISBaseActive(g, p))), nil
		},
		Finalize: problem.IntFinalizer("tree", verify.MIS),
		Checker: func(sol problem.Solution) (runtime.Factory, []any, error) {
			return check.MIS(), problem.EncodeInts(sol.Node), nil
		},
		Heal: &problem.Heal{
			Verify:        verify.MIS,
			Carve:         heal.CarveMIS,
			UndecidedPred: 0,
			HealProblem:   "mis",
		},
		Algorithms: []problem.Algorithm{
			{
				Name: "greedy", Template: problem.TemplateSolo,
				Reference: "Algorithm 6 alone", Bound: "ceil(h/2)+O(1)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) {
					r, err := rooted(c.Aux)
					if err != nil {
						return nil, err
					}
					return Solo(r, RootsAndLeaves(0)), nil
				},
			},
			{
				Name: "simple", Template: problem.TemplateSimple,
				Reference: "Init + Algorithm 6", Bound: "ceil(eta_t/2)+5",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) {
					r, err := rooted(c.Aux)
					if err != nil {
						return nil, err
					}
					return SimpleRootsLeaves(r), nil
				},
			},
			{
				Name: "consecutive", Template: problem.TemplateConsecutive,
				Reference: "GPS/CV 3-coloring + conversion", Bound: "2*ceil(eta_t/2)+O(log* d), robust",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) {
					r, err := rooted(c.Aux)
					if err != nil {
						return nil, err
					}
					return ConsecutiveColoring(r), nil
				},
			},
			{
				Name: "parallel", Template: problem.TemplateParallel,
				Reference: "GPS/CV 3-coloring + conversion (Corollary 15)", Bound: "min{ceil(eta_t/2)+5, O(log* d)}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) {
					r, err := rooted(c.Aux)
					if err != nil {
						return nil, err
					}
					return ParallelColoring(r), nil
				},
			},
		},
	}
}
