package tree

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// notify carries a terminating node's output bit.
type notify struct{ Bit int }

// Bits sizes the message for CONGEST accounting.
func (notify) Bits() int { return 2 }

// predMsg announces the sender's prediction.
type predMsg struct{ Bit int }

// Bits sizes the message for CONGEST accounting.
func (predMsg) Bits() int { return 2 }

func notifyAndOutput(c *core.StageCtx, mem *Memory, bit int) []runtime.Out {
	outs := runtime.BroadcastTo(mem.ActiveNeighbors(c.Info()), notify{Bit: bit})
	c.Output(bit)
	return outs
}

func record(mem *Memory, inbox []runtime.Msg) (gotOne bool) {
	for _, msg := range inbox {
		if nt, ok := msg.Payload.(notify); ok {
			mem.NbrOut[msg.From] = nt.Bit
			if nt.Bit == 1 {
				gotOne = true
			}
		}
	}
	return gotOne
}

// Init returns the MIS Rooted Tree Initialization Algorithm (Section 9.2):
// round 1 exchanges predictions; round 2 the black nodes without a black
// parent join the independent set; round 3 the nodes notified in round 2
// leave, and the white nodes that were not notified and have no white parent
// join; round 4 the nodes notified in round 3 leave. Afterwards the active
// components are monochromatic. Terminates in 3 rounds when the predictions
// are correct.
func Init() core.Stage {
	return core.Stage{
		Name:   "tree/init",
		Budget: 4,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &initMachine{mem: mem.(*Memory)}
		},
	}
}

type initMachine struct {
	mem     *Memory
	gotOne2 bool // notified with 1 during round 2
	gotOne3 bool // notified with 1 during round 3
}

func (m *initMachine) Send(c *core.StageCtx) []runtime.Out {
	mem := m.mem
	switch c.StageRound() {
	case 1:
		return runtime.Broadcast(c.Info(), predMsg{Bit: mem.Pred})
	case 2:
		if mem.Pred == 1 && !m.blackParent() {
			return notifyAndOutput(c, mem, 1)
		}
	case 3:
		if m.gotOne2 {
			return notifyAndOutput(c, mem, 0)
		}
		if mem.Pred == 0 && !m.whiteParent() {
			return notifyAndOutput(c, mem, 1)
		}
	case 4:
		if m.gotOne3 {
			return notifyAndOutput(c, mem, 0)
		}
	}
	return nil
}

func (m *initMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch c.StageRound() {
	case 1:
		for _, msg := range inbox {
			if pm, ok := msg.Payload.(predMsg); ok {
				m.mem.NbrPred[msg.From] = pm.Bit
			}
		}
	case 2:
		m.gotOne2 = record(m.mem, inbox)
	case 3:
		m.gotOne3 = record(m.mem, inbox)
	case 4:
		record(m.mem, inbox)
		c.Yield()
	}
}

func (m *initMachine) blackParent() bool {
	return m.mem.ParentID != 0 && m.mem.NbrPred[m.mem.ParentID] == 1
}

func (m *initMachine) whiteParent() bool {
	return m.mem.ParentID != 0 && m.mem.NbrPred[m.mem.ParentID] == 0
}

// RootsAndLeaves returns the measure-uniform rooted-tree MIS algorithm
// (paper Algorithm 6), in 2-round groups: in each odd round, every component
// root (no active parent) joins the independent set and notifies its active
// children, while every leaf (no active children) announces itself to its
// parent and then joins unless its parent just joined; in the even round,
// every node notified in the odd round leaves. Interrupting at even budgets
// leaves an extendable partial solution. The round complexity is at most
// ⌈η_t/2⌉+O(1) after the tree initialization.
func RootsAndLeaves(budget int) core.Stage {
	return core.Stage{
		Name:   "tree/roots-leaves",
		Budget: budget,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &rootsLeavesMachine{mem: mem.(*Memory)}
		},
	}
}

// rootMsg announces that the sender joined as a component root.
type rootMsg struct{}

// Bits sizes the message for CONGEST accounting.
func (rootMsg) Bits() int { return 1 }

// leafMsg announces that the sender is a leaf about to join.
type leafMsg struct{}

// Bits sizes the message for CONGEST accounting.
func (leafMsg) Bits() int { return 1 }

type rootsLeavesMachine struct {
	mem     *Memory
	gotMsg  bool // received any odd-round message: must leave
	wasLeaf bool // sent a leaf announcement this group
}

func (m *rootsLeavesMachine) Send(c *core.StageCtx) []runtime.Out {
	mem := m.mem
	if c.StageRound()%2 == 1 {
		m.wasLeaf = false
		if !mem.ParentActive() {
			outs := runtime.BroadcastTo(mem.ActiveChildren(c.Info()), rootMsg{})
			c.Output(1)
			return outs
		}
		if len(mem.ActiveChildren(c.Info())) == 0 {
			m.wasLeaf = true
			return []runtime.Out{{To: mem.ParentID, Payload: leafMsg{}}}
		}
		return nil
	}
	if m.gotMsg {
		return notifyAndOutput(c, mem, 0)
	}
	return nil
}

func (m *rootsLeavesMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	if c.StageRound()%2 == 1 {
		parentIsRoot := false
		for _, msg := range inbox {
			switch msg.Payload.(type) {
			case rootMsg:
				m.mem.NbrOut[msg.From] = 1
				if msg.From == m.mem.ParentID {
					parentIsRoot = true
				}
				m.gotMsg = true
			case leafMsg:
				m.gotMsg = true
			}
		}
		if m.wasLeaf {
			if parentIsRoot {
				c.Output(0)
			} else {
				c.Output(1)
			}
		}
		return
	}
	record(m.mem, inbox)
}

// Cleanup returns the one-round rooted-tree MIS clean-up: active nodes with
// an in-set neighbor leave, making the partial solution extendable after an
// interruption at an odd boundary.
func Cleanup() core.Stage {
	return core.Stage{
		Name:   "tree/cleanup",
		Budget: 1,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &treeCleanupMachine{mem: mem.(*Memory)}
		},
	}
}

type treeCleanupMachine struct{ mem *Memory }

func (m *treeCleanupMachine) Send(c *core.StageCtx) []runtime.Out {
	for _, bit := range m.mem.NbrOut {
		if bit == 1 {
			return notifyAndOutput(c, m.mem, 0)
		}
	}
	return nil
}

func (m *treeCleanupMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	record(m.mem, inbox)
	c.Yield()
}

// Solo runs a single rooted-tree stage as a complete algorithm on r.
func Solo(r *Rooted, stage core.Stage) runtime.Factory {
	return core.Sequence(NewMemory(r), stage)
}

// ConsecutiveColoring is the Consecutive Template on rooted trees: the
// rooted-tree initialization, Algorithm 6 for the reference's round bound
// (rounded to even so the interruption point is extendable), the one-round
// clean-up, then the GPS 3-coloring and its two-round conversion run as two
// sequential reference stages.
func ConsecutiveColoring(r *Rooted) runtime.Factory {
	cleanup := Cleanup()
	return core.Consecutive(core.ConsecutiveSpec{
		Mem:    NewMemory(r),
		B:      Init(),
		U:      RootsAndLeaves,
		Budget: func(info runtime.NodeInfo) int { return CVRounds(info.D) + 2 + 1 },
		Align:  2,
		C:      &cleanup,
		Ref: func(info runtime.NodeInfo) []core.Stage {
			return []core.Stage{
				{Name: "tree/cv", Budget: CVRounds(info.D), New: ColoringPart1()},
				{Name: "tree/conv", New: MISFrom3Coloring()},
			}
		},
	})
}

// SimpleRootsLeaves is the Simple Template on rooted trees: the rooted-tree
// initialization followed by Algorithm 6; round complexity at most
// ⌈η_t/2⌉+5 (Section 9.2).
func SimpleRootsLeaves(r *Rooted) runtime.Factory {
	return core.Simple(NewMemory(r), Init(), RootsAndLeaves(0))
}
