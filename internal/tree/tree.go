// Package tree implements the paper's rooted-tree MIS results (Section 9.2):
// the MIS Rooted Tree Initialization Algorithm, the roots-and-leaves
// measure-uniform algorithm (paper Algorithm 6), the Goldberg–Plotkin–
// Shannon/Cole–Vishkin 3-coloring of rooted trees as a fault-tolerant
// reference part 1, the two-round MIS-from-3-coloring part 2, the η_t error
// measure, and the Corollary 15 Parallel Template assembly.
package tree

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// Rooted is a rooted tree (or forest): an undirected graph together with a
// parent pointer per node (-1 at roots). Each node knows only whether it is
// a root and which neighbor is its parent, matching the paper's model.
type Rooted struct {
	G *graph.Graph
	// ParentIdx maps node index to parent node index, -1 at roots.
	ParentIdx []int
}

// ParentID returns the identifier of node i's parent, or 0 at roots.
func (r *Rooted) ParentID(i int) int {
	p := r.ParentIdx[i]
	if p < 0 {
		return 0
	}
	return r.G.ID(p)
}

// DirectedLine returns a rooted path of n nodes: node 0 is the root and node
// i's parent is node i−1.
func DirectedLine(n int) *Rooted {
	g := graph.Line(n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i - 1
	}
	return &Rooted{G: g, ParentIdx: parent}
}

// RandomRooted returns a uniformly random labelled tree rooted at node 0.
func RandomRooted(n int, rng *rand.Rand) *Rooted {
	g := graph.RandomTree(n, rng)
	return RootAt(g, 0)
}

// RootAt orients an acyclic graph as a forest rooted at the given node (and,
// for other components, at each component's smallest index).
func RootAt(g *graph.Graph, root int) *Rooted {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	var bfs func(src int)
	bfs = func(src int) {
		parent[src] = -1
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if parent[v] == -2 {
					parent[v] = u
					queue = append(queue, int(v))
				}
			}
		}
	}
	bfs(root)
	for i := 0; i < g.N(); i++ {
		if parent[i] == -2 {
			bfs(i)
		}
	}
	return &Rooted{G: g, ParentIdx: parent}
}

// Height returns the height (edge count of the longest root-to-leaf path) of
// the forest.
func (r *Rooted) Height() int {
	depth := make([]int, r.G.N())
	maxDepth := 0
	// Parents appear before children in a BFS order from the roots; compute
	// via repeated relaxation (trees are shallow relative to n, but be
	// general with an explicit order).
	order := r.topoOrder()
	for _, v := range order {
		if r.ParentIdx[v] >= 0 {
			depth[v] = depth[r.ParentIdx[v]] + 1
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	return maxDepth
}

// topoOrder returns node indices with every parent before its children.
func (r *Rooted) topoOrder() []int {
	n := r.G.N()
	children := make([][]int, n)
	var roots []int
	for v := 0; v < n; v++ {
		if p := r.ParentIdx[v]; p >= 0 {
			children[p] = append(children[p], v)
		} else {
			roots = append(roots, v)
		}
	}
	order := make([]int, 0, n)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, children[v]...)
	}
	return order
}

// EtaT computes the paper's rooted-tree error measure η_t: one plus the
// maximum height of the black and white components — equivalently, the
// maximum number of nodes on a monochromatic upward path in the subgraph
// induced by the nodes active after the MIS Base Algorithm. active and pred
// are indexed by node index.
func EtaT(r *Rooted, pred []int, active []bool) int {
	chain := make([]int, r.G.N())
	maxChain := 0
	for _, v := range r.topoOrder() {
		if !active[v] {
			continue
		}
		chain[v] = 1
		if p := r.ParentIdx[v]; p >= 0 && active[p] && pred[p] == pred[v] {
			chain[v] = chain[p] + 1
		}
		if chain[v] > maxChain {
			maxChain = chain[v]
		}
	}
	return maxChain
}

// Memory is the per-node shared state for the rooted-tree MIS algorithms.
type Memory struct {
	// Pred is the node's MIS prediction bit.
	Pred int
	// ParentID is the identifier of the node's parent, 0 at roots.
	ParentID int
	// NbrPred maps neighbor ID to its announced prediction.
	NbrPred map[int]int
	// NbrOut maps neighbor ID to its output bit; presence = terminated.
	NbrOut map[int]int
	// Color and Palette hold the 3-coloring stored by reference part 1.
	Color, Palette int
}

// StoreColor implements the reference part 1 color store.
func (m *Memory) StoreColor(color, palette int) { m.Color, m.Palette = color, palette }

// NewMemory returns the MemoryFactory for rooted-tree compositions on r.
// The factory closes over the parent pointers: each node is given only its
// own parent's identifier, consistent with the model.
func NewMemory(r *Rooted) func(info runtime.NodeInfo, pred any) any {
	return func(info runtime.NodeInfo, pred any) any {
		bit := 0
		if p, ok := pred.(int); ok {
			bit = p
		}
		return &Memory{
			Pred:     bit,
			ParentID: r.ParentID(info.Index),
			NbrPred:  make(map[int]int, len(info.NeighborIDs)),
			NbrOut:   make(map[int]int, len(info.NeighborIDs)),
		}
	}
}

// ActiveNeighbors returns neighbors not known to have terminated.
func (m *Memory) ActiveNeighbors(info runtime.NodeInfo) []int {
	out := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range info.NeighborIDs {
		if _, gone := m.NbrOut[nb]; !gone {
			out = append(out, nb)
		}
	}
	return out
}

// ParentActive reports whether the node still has an active parent.
func (m *Memory) ParentActive() bool {
	if m.ParentID == 0 {
		return false
	}
	_, gone := m.NbrOut[m.ParentID]
	return !gone
}

// ActiveChildren returns the active neighbors other than the parent.
func (m *Memory) ActiveChildren(info runtime.NodeInfo) []int {
	out := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range m.ActiveNeighbors(info) {
		if nb != m.ParentID {
			out = append(out, nb)
		}
	}
	return out
}
