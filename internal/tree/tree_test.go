package tree_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/tree"
	"repro/internal/verify"
)

func runTreeMIS(t *testing.T, r *tree.Rooted, factory runtime.Factory, preds []int) *runtime.Result {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
	}
	res, err := runtime.Run(runtime.Config{Graph: r.G, Factory: factory, Predictions: anyPreds})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, r.G.N())
	for i, o := range res.Outputs {
		v, ok := o.(int)
		if !ok {
			t.Fatalf("node %d output %v (%T)", r.G.ID(i), o, o)
		}
		out[i] = v
	}
	if err := verify.MIS(r.G, out); err != nil {
		t.Fatalf("invalid MIS: %v", err)
	}
	return res
}

func testTrees() map[string]*tree.Rooted {
	rng := rand.New(rand.NewSource(41))
	return map[string]*tree.Rooted{
		"single":   tree.DirectedLine(1),
		"pair":     tree.DirectedLine(2),
		"line30":   tree.DirectedLine(30),
		"line3k":   tree.DirectedLine(30), // used with the mod-3 pattern
		"rand40":   tree.RandomRooted(40, rng),
		"rand100":  tree.RandomRooted(100, rng),
		"star":     tree.RootAt(graph.Star(12), 0),
		"starleaf": tree.RootAt(graph.Star(12), 3),
		"cat":      tree.RootAt(graph.Caterpillar(8, 3), 0),
	}
}

func TestRootsAndLeavesSolo(t *testing.T) {
	for name, r := range testTrees() {
		t.Run(name, func(t *testing.T) {
			res := runTreeMIS(t, r, tree.Solo(r, tree.RootsAndLeaves(0)), nil)
			// Roots and leaves eat the tree from both ends: the height
			// shrinks by at least two per 2-round group.
			if limit := r.Height() + 6; res.Rounds > limit {
				t.Errorf("rounds %d > height+6 = %d", res.Rounds, limit)
			}
		})
	}
}

func TestTreeInitConsistency(t *testing.T) {
	for name, r := range testTrees() {
		preds := predict.PerfectMIS(r.G)
		t.Run(name, func(t *testing.T) {
			res := runTreeMIS(t, r, tree.SimpleRootsLeaves(r), preds)
			if res.Rounds > 3 {
				t.Errorf("consistency: got %d rounds, want <= 3", res.Rounds)
			}
		})
	}
}

func TestMod3LineExample(t *testing.T) {
	// Section 9.2's example: a directed line of 3k nodes with white nodes at
	// distance 0 mod 3. The tree initialization terminates everyone by round
	// 2 even though eta1 = 3k, and eta_t = 2.
	k := 10
	r := tree.DirectedLine(3 * k)
	preds := predict.Mod3Line(k)
	active := predict.MISBaseActive(r.G, preds)
	comps := predict.ErrorComponents(r.G, active)
	if eta1 := predict.Eta1(comps); eta1 != 3*k {
		t.Errorf("eta1 = %d, want %d", eta1, 3*k)
	}
	if etaT := tree.EtaT(r, preds, active); etaT != 2 {
		t.Errorf("etaT = %d, want 2", etaT)
	}
	res := runTreeMIS(t, r, tree.SimpleRootsLeaves(r), preds)
	if res.Rounds > 3 {
		t.Errorf("rounds = %d, want <= 3 (paper: all terminate by end of round 2)", res.Rounds)
	}
}

func TestTreeTemplatesAcrossErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, r := range testTrees() {
		for _, k := range []int{0, 1, 3, r.G.N()} {
			preds := predict.FlipBits(predict.PerfectMIS(r.G), k, rng)
			for fname, f := range map[string]runtime.Factory{
				"simple":   tree.SimpleRootsLeaves(r),
				"parallel": tree.ParallelColoring(r),
			} {
				t.Run(name+"/"+fname, func(t *testing.T) {
					runTreeMIS(t, r, f, preds)
				})
			}
		}
	}
}

func TestCorollary15Degradation(t *testing.T) {
	// Rounds <= ceil(eta_t / 2) + 5 for the Simple version.
	rng := rand.New(rand.NewSource(77))
	for name, r := range testTrees() {
		for _, k := range []int{0, 1, 2, 5} {
			preds := predict.FlipBits(predict.PerfectMIS(r.G), k, rng)
			active := predict.MISBaseActive(r.G, preds)
			etaT := tree.EtaT(r, preds, active)
			res := runTreeMIS(t, r, tree.SimpleRootsLeaves(r), preds)
			if limit := (etaT+1)/2 + 5; res.Rounds > limit {
				t.Errorf("%s k=%d: rounds %d > ceil(etaT/2)+5 = %d (etaT=%d)",
					name, k, res.Rounds, limit, etaT)
			}
		}
	}
}

func TestGPSColoringProper(t *testing.T) {
	// The 3-coloring reference alone: run part 1 + part 2 as a standalone
	// MIS algorithm (no predictions, empty measure-uniform lane is simulated
	// by the parallel factory with all-zero predictions flowing through the
	// tree initialization).
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 33, 128} {
		r := tree.RandomRooted(n, rng)
		res := runTreeMIS(t, r, tree.ParallelColoring(r), predict.Uniform(n, 0))
		if res.Rounds > tree.CVRounds(r.G.D())+16 {
			t.Errorf("n=%d: rounds %d exceed CV bound %d + slack", n, res.Rounds, tree.CVRounds(r.G.D()))
		}
	}
}

func TestConsecutiveColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, r := range testTrees() {
		for _, k := range []int{0, 2, r.G.N()} {
			preds := predict.FlipBits(predict.PerfectMIS(r.G), k, rng)
			t.Run(name, func(t *testing.T) {
				res := runTreeMIS(t, r, tree.ConsecutiveColoring(r), preds)
				etaT := func() int {
					active := predict.MISBaseActive(r.G, preds)
					return tree.EtaT(r, preds, active)
				}()
				if etaT == 0 && res.Rounds > 3 {
					t.Errorf("consistency broken: %d rounds at eta_t=0", res.Rounds)
				}
			})
		}
	}
}

// TestConsecutiveColoringReferenceTakesOver forces the reference path: on a
// deep directed line with all-wrong predictions, Algorithm 6 needs ~n/2
// rounds but its budget is only CVRounds+O(1), so the clean-up and the GPS
// coloring reference must finish the job.
func TestConsecutiveColoringReferenceTakesOver(t *testing.T) {
	n := 300
	r := tree.DirectedLine(n)
	preds := predict.Uniform(n, 1)
	res := runTreeMIS(t, r, tree.ConsecutiveColoring(r), preds)
	budget := tree.CVRounds(n) + 4
	if res.Rounds <= budget {
		t.Fatalf("rounds %d <= budget %d: reference never ran", res.Rounds, budget)
	}
	refBound := 4 + budget + 1 + tree.CVRounds(n) + 2 + 4
	if res.Rounds > refBound {
		t.Errorf("rounds %d > robustness bound %d", res.Rounds, refBound)
	}
}
