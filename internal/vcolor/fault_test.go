package vcolor_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

// TestLinialFaultTolerance crashes random subsets of nodes at random rounds
// and checks that the survivors still terminate on schedule with a coloring
// that is proper on the subgraph they induce — the property the Parallel
// Template requires of its reference's first part (Section 7.4).
func TestLinialFaultTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		g := graph.GNP(36, 0.15, rng)
		total := vcolor.Rounds(g.D(), g.MaxDegree())
		crashes := map[int]int{}
		for i := 0; i < g.N(); i++ {
			if rng.Float64() < 0.25 {
				crashes[i] = 1 + rng.Intn(total+1)
			}
		}
		res, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: vcolor.Solo(vcolor.LinialStandalone()),
			Crashes: crashes,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Build the survivor subgraph and its coloring.
		var survivors []int
		for i := 0; i < g.N(); i++ {
			if res.Outputs[i] != nil {
				survivors = append(survivors, i)
			}
		}
		sub, orig := g.InducedSubgraph(survivors)
		colors := make([]int, sub.N())
		for i, oldIdx := range orig {
			colors[i] = res.Outputs[oldIdx].(int)
		}
		// Survivors colored within the ORIGINAL palette Δ(G)+1 and properly
		// on the induced subgraph.
		if err := verify.VColorPartial(sub, colors, g.MaxDegree()+1); err != nil {
			t.Fatalf("trial %d (%d crashed): %v", trial, len(crashes), err)
		}
		for i, c := range colors {
			if c < 1 {
				t.Fatalf("trial %d: survivor %d uncolored", trial, sub.ID(i))
			}
		}
	}
}

// TestLinialTerminationRoundIsExact verifies the schedule: with no crashes,
// every node terminates in exactly Rounds(d, Δ) rounds — which is what lets
// the Parallel Template compute the budget r1 from static information.
func TestLinialTerminationRoundIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, g := range []*graph.Graph{
		graph.Line(1),
		graph.Line(33),
		graph.Clique(9),
		graph.GNP(64, 0.1, rng),
		graph.ShuffleIDs(graph.Ring(20), 500, rng),
	} {
		res, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: vcolor.Solo(vcolor.LinialStandalone()),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := vcolor.Rounds(g.D(), g.MaxDegree())
		if res.Rounds != want {
			t.Errorf("n=%d d=%d: rounds=%d, want %d", g.N(), g.D(), res.Rounds, want)
		}
		for i, r := range res.TerminatedAt {
			if r != want {
				t.Errorf("node %d terminated at %d, want %d", g.ID(i), r, want)
			}
		}
	}
}

// TestListReferenceRespectsForbiddenColors runs Init + LinialList on
// adversarial predictions and checks (via the full verifier, already done in
// other tests) plus the specific list property: no node's final color equals
// a color output by a neighbor that terminated during initialization.
func TestListReferenceRespectsForbiddenColors(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 15; trial++ {
		g := graph.GNP(40, 0.12, rng)
		// Half-correct predictions: many nodes keep their color in the init,
		// constraining the remainder's palettes.
		preds := make([]int, g.N())
		perfect := perfectColors(g)
		for i := range preds {
			preds[i] = perfect[i]
			if rng.Intn(2) == 0 {
				preds[i] = 1 + rng.Intn(g.MaxDegree()+1)
			}
		}
		var anyPreds []any
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: vcolor.SimpleLinial(), Predictions: anyPreds,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		out := make([]int, g.N())
		for i, o := range res.Outputs {
			out[i] = o.(int)
		}
		if err := verify.VColor(g, out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func perfectColors(g *graph.Graph) []int {
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		used := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if int(u) < v {
				used[colors[u]] = true
			}
		}
		for c := 1; ; c++ {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}
