// Package vcolor implements the (Δ+1)-Vertex Coloring problem with
// predictions (paper Section 8.2) and a Linial-style locally-iterative
// (Δ+1)-coloring algorithm built from cover-free set systems over prime
// fields. The coloring algorithm is fault tolerant — each round's recoloring
// decision uses only the colors heard that round, so crashed (or terminated)
// neighbors drop out naturally — which is exactly the property the Parallel
// Template requires of its reference's first part (Section 7.4).
package vcolor

// isPrime reports whether q is prime (trial division; q is small).
func isPrime(q int) bool {
	if q < 2 {
		return false
	}
	for f := 2; f*f <= q; f++ {
		if q%f == 0 {
			return false
		}
	}
	return true
}

// nextPrime returns the smallest prime >= q.
func nextPrime(q int) int {
	if q < 2 {
		return 2
	}
	for !isPrime(q) {
		q++
	}
	return q
}

// powAtLeast reports whether q^e >= k, without overflow.
func powAtLeast(q, e, k int) bool {
	p := 1
	for i := 0; i < e; i++ {
		if p >= (k+q-1)/q {
			return true
		}
		p *= q
	}
	return p >= k
}

// ReductionStep describes one Linial color-reduction round: colors in
// [0, K) are interpreted as polynomials of degree at most T over GF(Q) and
// replaced by a point of the polynomial's graph avoided by all neighbors,
// giving colors in [0, Q²).
type ReductionStep struct {
	Q, T, K int
}

// Schedule computes the Linial reduction schedule for identifier domain d
// and maximum degree delta: the reduction steps to apply in successive
// rounds and the resulting palette size kStar (the fixed point, O(Δ²)).
// Every node computes the same schedule from (d, Δ), so the rounds are
// lockstep and the total round bound is known in advance.
func Schedule(d, delta int) (steps []ReductionStep, kStar int) {
	k := d
	if delta == 0 {
		return nil, 1
	}
	for {
		q, t := chooseField(k, delta)
		if q*q >= k {
			return steps, k
		}
		steps = append(steps, ReductionStep{Q: q, T: t, K: k})
		k = q * q
	}
}

// chooseField returns the smallest prime q (and the smallest feasible degree
// bound t for it) such that colors in [0, k) embed as degree-≤t polynomials
// over GF(q) (q^{t+1} ≥ k) and every node can find an uncovered point
// (q ≥ Δ·t + 1).
func chooseField(k, delta int) (q, t int) {
	for q = 2; ; q = nextPrime(q + 1) {
		tmax := (q - 1) / delta
		if tmax < 1 {
			continue
		}
		if !powAtLeast(q, tmax+1, k) {
			continue
		}
		for t = 1; t <= tmax; t++ {
			if powAtLeast(q, t+1, k) {
				return q, t
			}
		}
	}
}

// Rounds returns the total round bound of the Linial coloring algorithm for
// identifier domain d and maximum degree delta: one round per reduction step
// plus one round per color eliminated in the final reduction from kStar to
// Δ+1 colors. The bound is O(Δ² + log* d); see DESIGN.md for the (documented)
// gap to the paper's O(Δ + log* d) references, which changes only constants
// in the robustness bounds.
func Rounds(d, delta int) int {
	steps, kStar := Schedule(d, delta)
	total := len(steps)
	if kStar > delta+1 {
		total += kStar - (delta + 1)
	}
	if total < 1 {
		total = 1
	}
	return total
}

// polyCoeffs expands color c (0-based, < q^{t+1}) into its base-q digits,
// the coefficients of its polynomial.
func polyCoeffs(c, q, t int) []int {
	coeffs := make([]int, t+1)
	for i := range coeffs {
		coeffs[i] = c % q
		c /= q
	}
	return coeffs
}

// polyEval evaluates the polynomial with the given coefficients at x, mod q.
func polyEval(coeffs []int, x, q int) int {
	v := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = (v*x + coeffs[i]) % q
	}
	return v
}

// ApplyReduction exposes one Linial reduction step for reuse by other
// packages (the Δ-doubling uniform MIS reference runs the same reduction on
// participant subgraphs).
func ApplyReduction(step ReductionStep, color int, nbrColors []int) int {
	return reduceColor(step, color, nbrColors)
}

// SmallestFreeColor exposes the final-reduction recoloring rule: the least
// 0-based color below palette missing from used.
func SmallestFreeColor(used []int, palette int) int {
	return smallestFree(used, palette)
}

// reduceColor applies one reduction step: given this node's color and the
// colors its live neighbors announced this round (all < step.K), it returns
// the new color in [0, Q²) — a point (x, f(x)) of this node's polynomial that
// lies on no neighbor's polynomial. Such a point exists because distinct
// polynomials of degree ≤ T agree on at most T of the Q evaluation points and
// Δ·T < Q.
func reduceColor(step ReductionStep, color int, nbrColors []int) int {
	mine := polyCoeffs(color, step.Q, step.T)
	others := make([][]int, 0, len(nbrColors))
	for _, c := range nbrColors {
		if c != color {
			others = append(others, polyCoeffs(c, step.Q, step.T))
		}
	}
	for x := 0; x < step.Q; x++ {
		fx := polyEval(mine, x, step.Q)
		hit := false
		for _, g := range others {
			if polyEval(g, x, step.Q) == fx {
				hit = true
				break
			}
		}
		if !hit {
			return x*step.Q + fx
		}
	}
	// Unreachable when the preconditions hold; fall back to the first point.
	return polyEval(mine, 0, step.Q)
}
