package vcolor_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

// TestInterruptAnywhereStaysProper interrupts the measure-uniform coloring
// at every budget and completes with the list-aware Linial reference: any
// partial proper coloring is extendable for this problem (Section 8.2), so
// every interruption point must lead to a proper final coloring.
func TestInterruptAnywhereStaysProper(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	g := graph.GNP(24, 0.25, rng)
	preds := predict.PerturbVColor(g, predict.PerfectVColor(g), 10, rng)
	anyPreds := make([]any, len(preds))
	for i, p := range preds {
		anyPreds[i] = p
	}
	for budget := 1; budget <= 12; budget++ {
		factory := core.Sequence(vcolor.NewMemory,
			vcolor.Init(), vcolor.MeasureUniform(budget), vcolor.LinialList())
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: anyPreds})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		out := make([]int, g.N())
		for i, o := range res.Outputs {
			out[i] = o.(int)
		}
		if err := verify.VColor(g, out); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
	}
}

// TestPartialProperEveryRound: the measure-uniform list coloring maintains a
// proper partial coloring after every single round.
func TestPartialProperEveryRound(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(30, 0.2, rng)
		palette := g.MaxDegree() + 1
		_, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: vcolor.Solo(vcolor.MeasureUniform(0)),
			Observer: func(round int, outputs []any, active []bool) {
				partial := make([]int, len(outputs))
				for i := range outputs {
					if active[i] {
						partial[i] = verify.Undecided
					} else if v, ok := outputs[i].(int); ok {
						partial[i] = v
					} else {
						partial[i] = verify.Undecided
					}
				}
				if err := verify.VColorPartial(g, partial, palette); err != nil {
					t.Errorf("trial %d round %d: %v", trial, round, err)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuickVColorAlwaysValid property-checks the pipeline with garbage
// predictions (arbitrary colors, possibly out of palette).
func TestQuickVColorAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		preds := make([]any, n)
		for i := range preds {
			preds[i] = rng.Intn(g.MaxDegree()+4) - 1 // may be 0 or out of range
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: vcolor.SimpleGreedy(), Predictions: preds,
		})
		if err != nil {
			return false
		}
		out := make([]int, n)
		for i, o := range res.Outputs {
			v, ok := o.(int)
			if !ok {
				return false
			}
			out[i] = v
		}
		return verify.VColor(g, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestInterleavedAndParallelLinial exercises the two new template
// instantiations for vertex coloring across graphs and error levels.
func TestInterleavedAndParallelLinial(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	graphs := map[string]*graph.Graph{
		"ring21":   graph.Ring(21),
		"grid6x6":  graph.Grid2D(6, 6),
		"gnp40":    graph.GNP(40, 0.12, rng),
		"clique7":  graph.Clique(7),
		"star12":   graph.Star(12),
		"shuffled": graph.ShuffleIDs(graph.Grid2D(5, 5), 250, rng),
	}
	for name, g := range graphs {
		perfect := predict.PerfectVColor(g)
		for _, k := range []int{0, 2, 8, g.N()} {
			preds := predict.PerturbVColor(g, perfect, k, rng)
			anyPreds := make([]any, len(preds))
			for i, p := range preds {
				anyPreds[i] = p
			}
			for fname, f := range map[string]runtime.Factory{
				"interleaved": vcolor.InterleavedLinial(),
				"parallel":    vcolor.ParallelLinial(),
			} {
				t.Run(name+"/"+fname, func(t *testing.T) {
					res, err := runtime.Run(runtime.Config{
						Graph: g, Factory: f, Predictions: anyPreds,
					})
					if err != nil {
						t.Fatal(err)
					}
					out := make([]int, g.N())
					for i, o := range res.Outputs {
						out[i] = o.(int)
					}
					if err := verify.VColor(g, out); err != nil {
						t.Fatal(err)
					}
					eta1 := func() int {
						active := predict.VColorBaseActive(g, preds)
						return predict.Eta1(predict.ErrorComponents(g, active))
					}()
					if eta1 == 0 && res.Rounds > 2 {
						t.Errorf("consistency broken: %d rounds at eta=0", res.Rounds)
					}
				})
			}
		}
	}
}

// TestQuickParallelLinialAlwaysValid hammers the vcolor Parallel Template
// with garbage predictions on shuffled-ID graphs.
func TestQuickParallelLinialAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8, shuffle bool) bool {
		n := int(rawN%26) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		if shuffle {
			g = graph.ShuffleIDs(g, 3*n, rng)
		}
		preds := make([]any, n)
		for i := range preds {
			preds[i] = rng.Intn(g.MaxDegree()+3) - 1
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: vcolor.ParallelLinial(), Predictions: preds,
		})
		if err != nil {
			return false
		}
		out := make([]int, n)
		for i, o := range res.Outputs {
			v, ok := o.(int)
			if !ok {
				return false
			}
			out[i] = v
		}
		return verify.VColor(g, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
