package vcolor

import (
	"errors"
	"math/bits"

	"repro/internal/core"
	"repro/internal/runtime"
)

// ColorStore receives the color computed by the Linial algorithm when it is
// used as the first part of a two-part reference (Parallel Template): the
// color is stored locally rather than output, as Algorithm 5 prescribes.
type ColorStore interface {
	StoreColor(color, palette int)
}

// colorMsg announces the sender's current color (0-based).
type colorMsg struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (m colorMsg) Bits() int { return bits.Len(uint(m.C)) + 1 }

// LinialPart1 returns the fault-tolerant (Δ+1)-coloring stage for use as
// part 1 of a two-part reference: it runs exactly Rounds(d, Δ) rounds,
// broadcasting the node's current color every round and recoloring from the
// colors actually heard (so terminated or crashed neighbors drop out), then
// stores the final color in the node's shared memory (which must implement
// ColorStore) and yields without output.
func LinialPart1() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return newLinial(info, func(c *core.StageCtx, color, palette int) {
			store, ok := c.Memory().(ColorStore)
			if !ok {
				c.Fail(ErrNoColorStore)
				return
			}
			store.StoreColor(color, palette)
			c.Yield()
		})
	}
}

// LinialStandalone returns the Linial coloring as a complete algorithm: all
// nodes output their (1-based) color and terminate in round Rounds(d, Δ).
func LinialStandalone() core.Stage {
	return core.Stage{
		Name: "vcolor/linial",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return newLinial(info, func(c *core.StageCtx, color, palette int) {
				c.Output(color)
			})
		},
	}
}

// ErrNoColorStore reports a composition bug: LinialPart1 requires the shared
// memory to implement ColorStore.
var ErrNoColorStore = errors.New("vcolor: shared memory does not implement ColorStore")

type linialMachine struct {
	steps  []ReductionStep
	kStar  int
	total  int
	color  int // 0-based current color
	finish func(c *core.StageCtx, color, palette int)
}

func newLinial(info runtime.NodeInfo, finish func(c *core.StageCtx, color, palette int)) *linialMachine {
	steps, kStar := Schedule(info.D, info.Delta)
	color := info.ID - 1
	if info.Delta == 0 {
		// No edges anywhere: the palette is {1}, so every node takes color 0.
		color = 0
	}
	return &linialMachine{
		steps:  steps,
		kStar:  kStar,
		total:  Rounds(info.D, info.Delta),
		color:  color,
		finish: finish,
	}
}

func (m *linialMachine) Send(c *core.StageCtx) []runtime.Out {
	return runtime.Broadcast(c.Info(), colorMsg{C: m.color})
}

func (m *linialMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	heard := make([]int, 0, len(inbox))
	for _, msg := range inbox {
		if cm, ok := msg.Payload.(colorMsg); ok {
			heard = append(heard, cm.C)
		}
	}
	r := c.StageRound()
	delta := c.Info().Delta
	switch {
	case r <= len(m.steps):
		m.color = reduceColor(m.steps[r-1], m.color, heard)
	default:
		// Final reduction: one color class per round, from kStar-1 down to
		// Δ+1 (0-based), recolors to the smallest free color in [0, Δ].
		target := m.kStar - (r - len(m.steps))
		if m.color == target && target > delta {
			m.color = smallestFree(heard, delta+1)
		}
	}
	if r >= m.total {
		// 1-based color for the standard palette {1, ..., Δ+1}.
		m.finish(c, m.color+1, delta+1)
	}
}

// smallestFree returns the least value in [0, palette) missing from used.
func smallestFree(used []int, palette int) int {
	taken := make([]bool, palette)
	for _, u := range used {
		if u >= 0 && u < palette {
			taken[u] = true
		}
	}
	for v := 0; v < palette; v++ {
		if !taken[v] {
			return v
		}
	}
	return 0
}
