package vcolor

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// RoundsList returns the round bound of LinialList: the plain Linial bound
// plus Δ+1 palette-repair rounds.
func RoundsList(d, delta int) int {
	return Rounds(d, delta) + delta + 1
}

// LinialList returns the list-aware coloring reference used as R in the
// vertex-coloring templates. It first runs the Linial algorithm to a proper
// (Δ+1)-coloring of the still-active subgraph, then spends Δ+1 repair rounds
// — one per color class — recoloring any node whose color collides with a
// color already output by a terminated neighbor (recorded in the shared
// memory's palette). Each active node's palette is larger than its total
// number of constraints, so a free color always exists, and a color class is
// an independent set, so simultaneous repairs never conflict. All nodes
// output in round RoundsList(d, Δ).
func LinialList() core.Stage {
	return core.Stage{
		Name: "vcolor/linial-list",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			steps, kStar := Schedule(info.D, info.Delta)
			color := info.ID - 1
			if info.Delta == 0 {
				color = 0
			}
			return &listMachine{
				steps: steps,
				kStar: kStar,
				base:  Rounds(info.D, info.Delta),
				total: RoundsList(info.D, info.Delta),
				color: color,
			}
		},
	}
}

type listMachine struct {
	steps       []ReductionStep
	kStar       int
	base, total int
	color       int // 0-based
}

func (m *listMachine) Send(c *core.StageCtx) []runtime.Out {
	return runtime.Broadcast(c.Info(), colorMsg{C: m.color})
}

func (m *listMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	heard := make([]int, 0, len(inbox))
	for _, msg := range inbox {
		if cm, ok := msg.Payload.(colorMsg); ok {
			heard = append(heard, cm.C)
		}
	}
	delta := c.Info().Delta
	r := c.StageRound()
	switch {
	case r <= len(m.steps):
		m.color = reduceColor(m.steps[r-1], m.color, heard)
	case r <= m.base:
		target := m.kStar - (r - len(m.steps))
		if m.color == target && target > delta {
			m.color = smallestFree(heard, delta+1)
		}
	default:
		// Repair round j handles color class Δ+1-j (0-based: delta+1-j).
		j := r - m.base
		target := delta + 1 - j
		forbidden := m.forbidden(c)
		if m.color == target && forbidden[m.color] {
			m.color = m.freeColor(heard, forbidden, delta+1)
		}
	}
	if r >= m.total {
		c.Output(m.color + 1)
	}
}

// forbidden returns, as a 0-based lookup, the colors output by terminated
// neighbors according to the shared memory (empty when the memory does not
// track palettes).
func (m *listMachine) forbidden(c *core.StageCtx) []bool {
	delta := c.Info().Delta
	out := make([]bool, delta+1)
	pm, ok := c.Memory().(PaletteMemory)
	if !ok {
		return out
	}
	for _, col := range pm.ForbiddenColors() {
		if col >= 1 && col <= delta+1 {
			out[col-1] = true
		}
	}
	return out
}

// freeColor returns the least 0-based color < palette avoiding both the
// heard colors and the forbidden set.
func (m *listMachine) freeColor(heard []int, forbidden []bool, palette int) int {
	taken := make([]bool, palette)
	copy(taken, forbidden)
	for _, h := range heard {
		if h >= 0 && h < palette {
			taken[h] = true
		}
	}
	for v := 0; v < palette; v++ {
		if !taken[v] {
			return v
		}
	}
	return 0
}
