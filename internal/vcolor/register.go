package vcolor

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/predict"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func init() { problem.Register(descriptor()) }

// descriptor registers (Δ+1)-vertex coloring (Section 8.2): the template
// instantiations over the list-aware Linial reference, the η₁ error measure,
// the distributed checker, and the Simple-Template healing machinery.
func descriptor() problem.Descriptor {
	return problem.Descriptor{
		Name:        "vcolor",
		Doc:         "(Delta+1)-vertex coloring (Section 8.2)",
		OutputLabel: "colors",
		Preds: func(g *graph.Graph, aux any, k int, seed int64) any {
			return predict.PerturbVColor(g, predict.PerfectVColor(g), k, rand.New(rand.NewSource(seed)))
		},
		EncodePreds: problem.IntPredCodec("vcolor"),
		Errors: func(g *graph.Graph, aux any, preds any) (string, error) {
			p, ok := preds.([]int)
			if !ok {
				return "", fmt.Errorf("vcolor: predictions must be []int, got %T", preds)
			}
			active := predict.VColorBaseActive(g, p)
			return fmt.Sprintf("eta1=%d", predict.Eta1(predict.ErrorComponents(g, active))), nil
		},
		Finalize: problem.IntFinalizer("vcolor", verify.VColor),
		Checker: func(sol problem.Solution) (runtime.Factory, []any, error) {
			return check.VColor(), problem.EncodeInts(sol.Node), nil
		},
		Heal: &problem.Heal{
			Verify:        verify.VColor,
			Carve:         heal.CarveVColor,
			UndecidedPred: 0,
		},
		Algorithms: []problem.Algorithm{
			{
				Name: "greedy", Template: problem.TemplateSolo,
				Reference: "measure-uniform list coloring alone", Bound: "mu1 <= n",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return Solo(MeasureUniform(0)), nil },
			},
			{
				Name: "simple", Template: problem.TemplateSimple,
				Reference: "Init + measure-uniform list coloring", Bound: "eta1+2",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleGreedy(), nil },
			},
			{
				Name: "linial", Template: problem.TemplateSimple,
				Reference: "Init + list-aware Linial", Bound: "2 + O(Delta^2 log* d)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleLinial(), nil },
			},
			{
				Name: "consecutive", Template: problem.TemplateConsecutive,
				Reference: "list-aware Linial", Bound: "2eta1+O(1), robust",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ConsecutiveLinial(), nil },
			},
			{
				Name: "standalone", Template: problem.TemplateSolo,
				Reference: "Linial coloring alone (no predictions)", Bound: "O(Delta^2 log* d)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return Solo(LinialStandalone()), nil },
			},
			{
				Name: "interleaved", Template: problem.TemplateInterleaved,
				Reference: "list-aware Linial", Bound: "2eta1+O(1), robust",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return InterleavedLinial(), nil },
			},
			{
				Name: "parallel", Template: problem.TemplateParallel,
				Reference: "fault-tolerant Linial + palette repair", Bound: "min{eta1+O(1), O(Delta^2 log* d)}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ParallelLinial(), nil },
			},
		},
	}
}
