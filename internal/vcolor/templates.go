package vcolor

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Solo runs a single vertex-coloring stage as a complete algorithm.
func Solo(stage core.Stage) runtime.Factory {
	return core.Sequence(NewMemory, stage)
}

// SimpleGreedy is the Simple Template for (Δ+1)-vertex coloring: the
// reasonable initialization followed by the measure-uniform list-coloring
// algorithm. Consistency 2, η₁-degrading (the measure-uniform algorithm
// finishes a component of s nodes in at most s rounds).
func SimpleGreedy() runtime.Factory {
	return core.Simple(NewMemory, Init(), MeasureUniform(0))
}

// SimpleBase is SimpleGreedy starting from the Base Algorithm.
func SimpleBase() runtime.Factory {
	return core.Simple(NewMemory, Base(), MeasureUniform(0))
}

// SimpleLinial is the Simple Template with the list-aware Linial reference:
// consistent, with worst-case round complexity 2 + RoundsList(d, Δ)
// independent of the prediction error.
func SimpleLinial() runtime.Factory {
	return core.Simple(NewMemory, Init(), LinialList())
}

// ConsecutiveLinial is the Consecutive Template (no clean-up stage is needed
// for this problem, Section 8.2, and any interruption point is extendable,
// so no budget alignment either): initialization, the measure-uniform
// algorithm for r(n, Δ, d) rounds, then the list-aware Linial reference.
// Consistency 2, 2η₁-degrading, robust with respect to the reference.
func ConsecutiveLinial() runtime.Factory {
	return core.Consecutive(core.ConsecutiveSpec{
		Mem:    NewMemory,
		B:      Init(),
		U:      MeasureUniform,
		Budget: func(info runtime.NodeInfo) int { return RoundsList(info.D, info.Delta) },
		Ref:    core.FixedRef(LinialList()),
	})
}

// InterleavedLinial is the Interleaved Template for vertex coloring: slices
// of the measure-uniform algorithm alternate with slices of the list-aware
// Linial reference. Any partial proper coloring is extendable for this
// problem (Section 8.2), so every slice boundary is safe, and the Linial
// lane tolerates the measure-uniform lane's terminations (crashes from its
// point of view). The schedule keeps the reference's final Δ+1 palette-
// repair rounds inside a single slice: a measure-uniform termination between
// two repair rounds could otherwise re-poison an already-repaired color
// class. Consistency 2, 2η₁-degrading, robust with respect to the reference.
func InterleavedLinial() runtime.Factory {
	return core.Interleaved(NewMemory, Init(), MeasureUniform(0).New, LinialList().New,
		func(info runtime.NodeInfo) []int {
			total := RoundsList(info.D, info.Delta)
			tail := info.Delta + 2 // repair rounds + output must not straddle slices
			slice := 8
			if slice < tail {
				slice = tail
			}
			var sched []int
			remaining := total
			for remaining > slice+tail {
				sched = append(sched, slice)
				remaining -= slice
			}
			return append(sched, remaining)
		})
}

// ParallelLinial is the Parallel Template for vertex coloring: the
// measure-uniform algorithm runs alongside the fault-tolerant Linial
// coloring, whose result is stored locally; part 2 then spends Δ+1 repair
// rounds reconciling the stored colors with everything the measure-uniform
// lane output in the meantime (one color class per round, palettes always
// have room) before outputting. No clean-up stage is needed. Consistency 2
// and η₁-degrading without the Consecutive Template's factor two.
func ParallelLinial() runtime.Factory {
	return core.Parallel(core.ParallelSpec{
		Mem: NewMemory,
		B:   Init(),
		U:   MeasureUniform(0).New,
		R1:  LinialPart1(),
		R1Budget: func(info runtime.NodeInfo) int {
			return Rounds(info.D, info.Delta)
		},
		C:  nil,
		R2: RepairPart2(),
	})
}

// RepairPart2 returns the Parallel Template's second part for vertex
// coloring: Δ+1 rounds in which color class c (from Δ+1 down to 1) repairs
// collisions between the stored part-1 colors and the colors output by
// terminated neighbors, followed by the final output.
func RepairPart2() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &repairMachine{mem: mem.(*Memory), total: info.Delta + 1}
	}
}

type repairMachine struct {
	mem   *Memory
	total int
	color int // 0-based working color
}

func (m *repairMachine) Send(c *core.StageCtx) []runtime.Out {
	if c.StageRound() == 1 {
		m.color = m.mem.Color - 1
	}
	return runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), colorMsg{C: m.color})
}

func (m *repairMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	delta := c.Info().Delta
	heard := make([]int, 0, len(inbox))
	for _, msg := range inbox {
		if cm, ok := msg.Payload.(colorMsg); ok {
			heard = append(heard, cm.C)
		}
	}
	forbidden := make([]bool, delta+1)
	for _, col := range m.mem.ForbiddenColors() {
		if col >= 1 && col <= delta+1 {
			forbidden[col-1] = true
		}
	}
	target := delta + 1 - c.StageRound() // delta down to 0 (0-based classes)
	if m.color == target && m.color >= 0 && m.color <= delta && forbidden[m.color] {
		taken := make([]bool, delta+1)
		copy(taken, forbidden)
		for _, h := range heard {
			if h >= 0 && h <= delta {
				taken[h] = true
			}
		}
		for v := 0; v <= delta; v++ {
			if !taken[v] {
				m.color = v
				break
			}
		}
	}
	if c.StageRound() >= m.total {
		c.Output(m.color + 1)
	}
}
