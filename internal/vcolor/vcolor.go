package vcolor

import (
	"sort"

	"repro/internal/core"
	"repro/internal/runtime"
)

// Memory is the per-node shared state for (Δ+1)-Vertex Coloring with
// predictions: the node's predicted color, its neighbors' announced
// predictions, and the colors of neighbors that have terminated (which are
// precisely the colors removed from this node's palette; extendability in
// Section 8.2 is maintained by construction).
type Memory struct {
	// Pred is the node's predicted color.
	Pred int
	// NbrPred maps neighbor ID to announced prediction.
	NbrPred map[int]int
	// NbrColor maps neighbor ID to its output color; presence means the
	// neighbor has terminated.
	NbrColor map[int]int
	// Color and Palette hold the tentative color stored by reference part 1
	// in the Parallel Template.
	Color, Palette int
}

// StoreColor implements ColorStore for the Parallel Template's part 1.
func (m *Memory) StoreColor(color, palette int) { m.Color, m.Palette = color, palette }

// NewMemory is the MemoryFactory for vertex-coloring compositions.
func NewMemory(info runtime.NodeInfo, pred any) any {
	p := 0
	if v, ok := pred.(int); ok {
		p = v
	}
	return &Memory{
		Pred:     p,
		NbrPred:  make(map[int]int, len(info.NeighborIDs)),
		NbrColor: make(map[int]int, len(info.NeighborIDs)),
	}
}

// ForbiddenColors returns the colors output by terminated neighbors, sorted.
func (m *Memory) ForbiddenColors() []int {
	out := make([]int, 0, len(m.NbrColor))
	for _, c := range m.NbrColor {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// PaletteMemory is implemented by shared memories that track the colors
// removed from the node's palette by terminated neighbors; the list-aware
// reference consults it.
type PaletteMemory interface {
	ForbiddenColors() []int
}

// ActiveNeighbors returns neighbors not known to have terminated.
func (m *Memory) ActiveNeighbors(info runtime.NodeInfo) []int {
	out := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range info.NeighborIDs {
		if _, gone := m.NbrColor[nb]; !gone {
			out = append(out, nb)
		}
	}
	return out
}

// colorNotify is sent just before a node terminates with its color.
type colorNotify struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (colorNotify) Bits() int { return 16 }

// predColorMsg announces the node's predicted color.
type predColorMsg struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (predColorMsg) Bits() int { return 16 }

func (m *Memory) recordNotifies(inbox []runtime.Msg) {
	for _, msg := range inbox {
		if cn, ok := msg.Payload.(colorNotify); ok {
			m.NbrColor[msg.From] = cn.C
		}
	}
}

// Base returns the (Δ+1)-Vertex Coloring Base Algorithm (Section 8.2): after
// exchanging predictions, a node whose prediction differs from those of all
// its neighbors informs its neighbors, outputs its predicted color, and
// terminates; every informed node removes that color from its palette.
// Two rounds.
func Base() core.Stage {
	return core.Stage{Name: "vcolor/base", Budget: 2, New: newInitLike(false)}
}

// Init returns the reasonable initialization of Section 8.2: a node outputs
// its predicted color provided all neighbors with the same prediction have
// smaller identifiers. The partial solution contains the Base Algorithm's.
func Init() core.Stage {
	return core.Stage{Name: "vcolor/init", Budget: 2, New: newInitLike(true)}
}

func newInitLike(tieBreak bool) core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &initMachine{mem: mem.(*Memory), tieBreak: tieBreak}
	}
}

type initMachine struct {
	mem      *Memory
	tieBreak bool
}

func (m *initMachine) Send(c *core.StageCtx) []runtime.Out {
	switch c.StageRound() {
	case 1:
		return runtime.Broadcast(c.Info(), predColorMsg{C: m.mem.Pred})
	case 2:
		if m.keepsPrediction(c.Info()) {
			outs := runtime.Broadcast(c.Info(), colorNotify{C: m.mem.Pred})
			c.Output(m.mem.Pred)
			return outs
		}
	}
	return nil
}

func (m *initMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch c.StageRound() {
	case 1:
		for _, msg := range inbox {
			if pm, ok := msg.Payload.(predColorMsg); ok {
				m.mem.NbrPred[msg.From] = pm.C
			}
		}
	case 2:
		m.mem.recordNotifies(inbox)
		c.Yield()
	}
}

func (m *initMachine) keepsPrediction(info runtime.NodeInfo) bool {
	if m.mem.Pred < 1 || m.mem.Pred > info.Delta+1 {
		return false
	}
	for _, nb := range info.NeighborIDs {
		if m.mem.NbrPred[nb] != m.mem.Pred {
			continue
		}
		if !m.tieBreak || nb > info.ID {
			return false
		}
	}
	return true
}

// MeasureUniform returns the measure-uniform list-coloring algorithm of
// Section 8.2: each round, every active node whose identifier exceeds those
// of all its active neighbors picks the smallest color remaining in its
// palette, informs its active neighbors, outputs, and terminates. At least
// one node per component terminates each round, so the round complexity on a
// component with s nodes is at most s; the code consults no graph parameter,
// so the algorithm is measure-uniform with respect to μ₁. Interrupting it at
// any budget leaves an extendable partial solution (any partial proper
// coloring is extendable for this problem).
func MeasureUniform(budget int) core.Stage {
	return core.Stage{
		Name:   "vcolor/greedy",
		Budget: budget,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &greedyMachine{mem: mem.(*Memory)}
		},
	}
}

type greedyMachine struct{ mem *Memory }

func (m *greedyMachine) Send(c *core.StageCtx) []runtime.Out {
	active := m.mem.ActiveNeighbors(c.Info())
	for _, nb := range active {
		if nb > c.ID() {
			return nil
		}
	}
	color := smallestFreePalette(c.Info().Delta+1, m.mem.ForbiddenColors())
	outs := runtime.BroadcastTo(active, colorNotify{C: color})
	c.Output(color)
	return outs
}

func (m *greedyMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	m.mem.recordNotifies(inbox)
}

// smallestFreePalette returns the least color in {1, ..., palette} not in
// forbidden.
func smallestFreePalette(palette int, forbidden []int) int {
	taken := make([]bool, palette+1)
	for _, f := range forbidden {
		if f >= 1 && f <= palette {
			taken[f] = true
		}
	}
	for v := 1; v <= palette; v++ {
		if !taken[v] {
			return v
		}
	}
	return 1
}
