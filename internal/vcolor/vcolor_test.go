package vcolor_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

func runVColor(t *testing.T, g *graph.Graph, factory runtime.Factory, preds []int) *runtime.Result {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: anyPreds})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		v, ok := o.(int)
		if !ok {
			t.Fatalf("node %d output %v (%T)", g.ID(i), o, o)
		}
		out[i] = v
	}
	if err := verify.VColor(g, out); err != nil {
		t.Fatalf("invalid coloring: %v", err)
	}
	return res
}

func testGraphs() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(19))
	return map[string]*graph.Graph{
		"single":   graph.Line(1),
		"pair":     graph.Line(2),
		"line20":   graph.Line(20),
		"ring21":   graph.Ring(21),
		"star10":   graph.Star(10),
		"clique6":  graph.Clique(6),
		"grid6x6":  graph.Grid2D(6, 6),
		"gnp32":    graph.GNP(32, 0.15, rng),
		"tree27":   graph.RandomTree(27, rng),
		"shuffled": graph.ShuffleIDs(graph.Ring(24), 240, rng),
	}
}

func TestLinialStandalone(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			res := runVColor(t, g, vcolor.Solo(vcolor.LinialStandalone()), nil)
			want := vcolor.Rounds(g.D(), g.MaxDegree())
			if res.Rounds != want {
				t.Errorf("rounds = %d, want exactly %d", res.Rounds, want)
			}
		})
	}
}

func TestMeasureUniformSolo(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			res := runVColor(t, g, vcolor.Solo(vcolor.MeasureUniform(0)), nil)
			if res.Rounds > g.N() {
				t.Errorf("rounds %d > n = %d", res.Rounds, g.N())
			}
		})
	}
}

func TestVColorConsistency(t *testing.T) {
	for name, g := range testGraphs() {
		preds := predict.PerfectVColor(g)
		t.Run(name, func(t *testing.T) {
			res := runVColor(t, g, vcolor.SimpleGreedy(), preds)
			if res.Rounds > 2 {
				t.Errorf("consistency: got %d rounds, want <= 2", res.Rounds)
			}
			for i, o := range res.Outputs {
				if o.(int) != preds[i] {
					t.Errorf("node %d output %v, prediction %d", g.ID(i), o, preds[i])
				}
			}
		})
	}
}

func TestVColorTemplatesAcrossErrors(t *testing.T) {
	factories := map[string]runtime.Factory{
		"simple-greedy":      vcolor.SimpleGreedy(),
		"simple-base":        vcolor.SimpleBase(),
		"simple-linial":      vcolor.SimpleLinial(),
		"consecutive-linial": vcolor.ConsecutiveLinial(),
	}
	rng := rand.New(rand.NewSource(47))
	for gname, g := range testGraphs() {
		for _, k := range []int{0, 1, 3, g.N()} {
			preds := predict.PerturbVColor(g, predict.PerfectVColor(g), k, rng)
			for fname, f := range factories {
				t.Run(gname+"/"+fname, func(t *testing.T) {
					runVColor(t, g, f, preds)
				})
			}
		}
	}
}

func TestVColorDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for gname, g := range testGraphs() {
		for _, k := range []int{0, 1, 2, 4} {
			preds := predict.PerturbVColor(g, predict.PerfectVColor(g), k, rng)
			active := predict.VColorBaseActive(g, preds)
			eta1 := predict.Eta1(predict.ErrorComponents(g, active))
			res := runVColor(t, g, vcolor.SimpleGreedy(), preds)
			if limit := eta1 + 2; res.Rounds > limit {
				t.Errorf("%s k=%d: rounds %d > eta1+2 = %d", gname, k, res.Rounds, limit)
			}
		}
	}
}

func TestScheduleProperties(t *testing.T) {
	for _, d := range []int{1, 2, 7, 16, 100, 1000, 100000} {
		for _, delta := range []int{0, 1, 2, 3, 8, 20} {
			steps, kStar := vcolor.Schedule(d, delta)
			if delta == 0 {
				if kStar != 1 || len(steps) != 0 {
					t.Errorf("d=%d delta=0: kStar=%d steps=%d", d, kStar, len(steps))
				}
				continue
			}
			k := d
			for _, s := range steps {
				if s.K != k {
					t.Errorf("step K=%d, want %d", s.K, k)
				}
				if s.Q < delta*s.T+1 {
					t.Errorf("q=%d < delta*t+1=%d", s.Q, delta*s.T+1)
				}
				if s.Q*s.Q >= k {
					t.Errorf("step applied with q^2=%d >= k=%d (no progress)", s.Q*s.Q, k)
				}
				k = s.Q * s.Q
			}
			if k != kStar {
				t.Errorf("kStar=%d, want %d", kStar, k)
			}
			if len(steps) > 10 {
				t.Errorf("d=%d delta=%d: %d steps, want O(log* d)", d, delta, len(steps))
			}
		}
	}
}
