// Package verify checks complete and partial solutions to the four problems
// in the paper, including the extendability conditions of Section 3 that the
// templates rely on at every stage boundary.
package verify

import (
	"fmt"

	"repro/internal/graph"
)

// Undecided marks a node (or edge) with no output yet in a partial solution.
const Undecided = -1

// MIS checks that out (0/1 per node) is a maximal independent set of g.
func MIS(g *graph.Graph, out []int) error {
	if err := lengths(g, len(out)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		switch out[v] {
		case 1:
			for _, u := range g.Neighbors(v) {
				if out[u] == 1 {
					return fmt.Errorf("verify: adjacent nodes %d and %d both in set", g.ID(v), g.ID(int(u)))
				}
			}
		case 0:
			hasOne := false
			for _, u := range g.Neighbors(v) {
				if out[u] == 1 {
					hasOne = true
					break
				}
			}
			if !hasOne {
				return fmt.Errorf("verify: node %d out of set with no in-set neighbor", g.ID(v))
			}
		default:
			return fmt.Errorf("verify: node %d has output %d, want 0 or 1", g.ID(v), out[v])
		}
	}
	return nil
}

// MISPartialExtendable checks that a partial MIS assignment (Undecided where
// no output yet) is an extendable partial solution in the paper's sense: the
// decided nodes solve MIS on the subgraph they induce, and every neighbor of
// a decided 1 is decided 0 (Section 3).
func MISPartialExtendable(g *graph.Graph, out []int) error {
	if err := lengths(g, len(out)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		switch out[v] {
		case Undecided:
		case 1:
			for _, u := range g.Neighbors(v) {
				if out[u] != 0 {
					return fmt.Errorf("verify: in-set node %d has neighbor %d with output %d, want 0 (not extendable)",
						g.ID(v), g.ID(int(u)), out[u])
				}
			}
		case 0:
			hasOne := false
			for _, u := range g.Neighbors(v) {
				if out[u] == 1 {
					hasOne = true
					break
				}
			}
			if !hasOne {
				return fmt.Errorf("verify: decided-0 node %d has no in-set neighbor (not a partial solution)", g.ID(v))
			}
		default:
			return fmt.Errorf("verify: node %d has output %d", g.ID(v), out[v])
		}
	}
	return nil
}

// Matching checks that out (partner identifier per node, predict.Unmatched=0
// for none) is a maximal matching of g.
func Matching(g *graph.Graph, out []int) error {
	if err := lengths(g, len(out)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		p := out[v]
		if p == 0 {
			for _, u := range g.Neighbors(v) {
				if out[u] == 0 {
					return fmt.Errorf("verify: unmatched adjacent nodes %d and %d (not maximal)", g.ID(v), g.ID(int(u)))
				}
			}
			continue
		}
		u := g.IndexOfID(p)
		if u < 0 || !g.HasEdge(v, u) {
			return fmt.Errorf("verify: node %d matched to non-neighbor %d", g.ID(v), p)
		}
		if out[u] != g.ID(v) {
			return fmt.Errorf("verify: node %d matched to %d but %d matched to %d", g.ID(v), p, p, out[u])
		}
	}
	return nil
}

// MatchingPartialExtendable checks that a partial matching assignment
// (Undecided for no output) is extendable: matched pairs are mutual edges,
// and a node decided unmatched has all neighbors matched (Section 8.1).
func MatchingPartialExtendable(g *graph.Graph, out []int) error {
	if err := lengths(g, len(out)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		switch out[v] {
		case Undecided:
		case 0:
			for _, u := range g.Neighbors(v) {
				if out[u] <= 0 {
					return fmt.Errorf("verify: node %d decided unmatched but neighbor %d undecided or unmatched",
						g.ID(v), g.ID(int(u)))
				}
			}
		default:
			u := g.IndexOfID(out[v])
			if u < 0 || !g.HasEdge(v, u) {
				return fmt.Errorf("verify: node %d matched to non-neighbor %d", g.ID(v), out[v])
			}
			if out[u] != g.ID(v) {
				return fmt.Errorf("verify: asymmetric match %d -> %d", g.ID(v), out[v])
			}
		}
	}
	return nil
}

// VColor checks a (Δ+1)-vertex coloring.
func VColor(g *graph.Graph, out []int) error {
	return VColorWithPalette(g, out, g.MaxDegree()+1)
}

// VColorWithPalette checks a proper vertex coloring with colors in
// {1, ..., palette}.
func VColorWithPalette(g *graph.Graph, out []int, palette int) error {
	if err := lengths(g, len(out)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if out[v] < 1 || out[v] > palette {
			return fmt.Errorf("verify: node %d has color %d outside [1,%d]", g.ID(v), out[v], palette)
		}
		for _, u := range g.Neighbors(v) {
			if out[u] == out[v] {
				return fmt.Errorf("verify: adjacent nodes %d and %d share color %d", g.ID(v), g.ID(int(u)), out[v])
			}
		}
	}
	return nil
}

// VColorPartial checks a partial proper coloring (Undecided allowed).
func VColorPartial(g *graph.Graph, out []int, palette int) error {
	if err := lengths(g, len(out)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if out[v] == Undecided {
			continue
		}
		if out[v] < 1 || out[v] > palette {
			return fmt.Errorf("verify: node %d has color %d outside [1,%d]", g.ID(v), out[v], palette)
		}
		for _, u := range g.Neighbors(v) {
			if out[u] == out[v] {
				return fmt.Errorf("verify: adjacent nodes %d and %d share color %d", g.ID(v), g.ID(int(u)), out[v])
			}
		}
	}
	return nil
}

// EColor checks a (2Δ−1)-edge coloring given per-edge colors indexed like
// g.Edges().
func EColor(g *graph.Graph, colors []int) error {
	if len(colors) != g.M() {
		return fmt.Errorf("verify: %d edge colors for %d edges", len(colors), g.M())
	}
	palette := 2*g.MaxDegree() - 1
	incident := make([][]int, g.N())
	for e, ends := range g.Edges() {
		incident[ends[0]] = append(incident[ends[0]], e)
		incident[ends[1]] = append(incident[ends[1]], e)
	}
	for e, c := range colors {
		if c < 1 || c > palette {
			return fmt.Errorf("verify: edge %v has color %d outside [1,%d]", g.Edges()[e], c, palette)
		}
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int]int, len(incident[v]))
		for _, e := range incident[v] {
			if prev, dup := seen[colors[e]]; dup {
				return fmt.Errorf("verify: node %d has edges %v and %v with color %d",
					g.ID(v), g.Edges()[prev], g.Edges()[e], colors[e])
			}
			seen[colors[e]] = e
		}
	}
	return nil
}

// NodeEdgeColorsAgree checks that per-node edge-color outputs agree across
// each edge and converts them to per-edge colors. outs[v] lists node v's
// colors in ascending-identifier neighbor order (the order node machines
// see).
func NodeEdgeColorsAgree(g *graph.Graph, outs [][]int) ([]int, error) {
	colors := make([]int, g.M())
	idx := g.EdgeIndex()
	// First pass fills, second pass compares, so the iteration order of the
	// two endpoints does not matter.
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < g.N(); v++ {
			nbrs := g.NeighborsByID(v)
			if len(outs[v]) != len(nbrs) {
				return nil, fmt.Errorf("verify: node %d output %d colors for %d edges", g.ID(v), len(outs[v]), len(nbrs))
			}
			for j, u := range nbrs {
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				e := idx[[2]int{a, b}]
				if pass == 0 && v == a {
					colors[e] = outs[v][j]
				}
				if pass == 1 && v == b && colors[e] != outs[v][j] {
					return nil, fmt.Errorf("verify: edge %v colored %d by one endpoint and %d by the other",
						g.Edges()[e], colors[e], outs[v][j])
				}
			}
		}
	}
	return colors, nil
}

func lengths(g *graph.Graph, got int) error {
	if got != g.N() {
		return fmt.Errorf("verify: %d outputs for %d nodes", got, g.N())
	}
	return nil
}
