package verify_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/verify"
)

func TestMIS(t *testing.T) {
	g := graph.Line(4) // 0-1-2-3
	cases := []struct {
		name string
		out  []int
		ok   bool
	}{
		{"valid alternating", []int{1, 0, 1, 0}, true},
		{"valid ends", []int{1, 0, 0, 1}, true},
		{"adjacent ones", []int{1, 1, 0, 1}, false},
		{"not maximal", []int{1, 0, 0, 0}, false},
		{"bad value", []int{1, 0, 2, 0}, false},
		{"short", []int{1, 0, 1}, false},
	}
	for _, c := range cases {
		err := verify.MIS(g, c.out)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMISPartialExtendable(t *testing.T) {
	g := graph.Line(5) // 0-1-2-3-4
	u := verify.Undecided
	cases := []struct {
		name string
		out  []int
		ok   bool
	}{
		{"all undecided", []int{u, u, u, u, u}, true},
		{"one in set with both neighbors out", []int{0, 1, 0, u, u}, true},
		{"in-set node with undecided neighbor", []int{1, u, u, u, u}, false},
		{"decided zero with no in-set neighbor", []int{0, u, u, u, u}, false},
		{"complete solution", []int{1, 0, 1, 0, 1}, true},
		{"zero island", []int{u, u, 0, u, u}, false},
	}
	for _, c := range cases {
		err := verify.MISPartialExtendable(g, c.out)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMatching(t *testing.T) {
	g := graph.Line(4) // ids 1,2,3,4
	cases := []struct {
		name string
		out  []int
		ok   bool
	}{
		{"two pairs", []int{2, 1, 4, 3}, true},
		{"middle pair", []int{0, 3, 2, 0}, true},
		{"adjacent unmatched", []int{0, 0, 4, 3}, false},
		{"asymmetric", []int{2, 3, 2, 0}, false},
		{"non-neighbor", []int{3, 0, 1, 0}, false},
	}
	for _, c := range cases {
		err := verify.Matching(g, c.out)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMatchingPartialExtendable(t *testing.T) {
	g := graph.Line(4)
	u := verify.Undecided
	cases := []struct {
		name string
		out  []int
		ok   bool
	}{
		{"pair plus undecided", []int{2, 1, u, u}, true},
		{"unmatched beside undecided", []int{0, u, u, u}, false},
		{"unmatched beside matched", []int{0, 3, 2, u}, true},
	}
	for _, c := range cases {
		err := verify.MatchingPartialExtendable(g, c.out)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestVColor(t *testing.T) {
	g := graph.Ring(4) // Δ=2, palette {1,2,3}
	cases := []struct {
		name string
		out  []int
		ok   bool
	}{
		{"proper", []int{1, 2, 1, 2}, true},
		{"adjacent same", []int{1, 1, 2, 3}, false},
		{"out of palette", []int{1, 2, 1, 4}, false},
		{"zero color", []int{0, 1, 2, 1}, false},
	}
	for _, c := range cases {
		err := verify.VColor(g, c.out)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
	if err := verify.VColorPartial(g, []int{verify.Undecided, 1, verify.Undecided, 1}, 3); err != nil {
		t.Errorf("partial proper rejected: %v", err)
	}
	if err := verify.VColorPartial(g, []int{1, 1, verify.Undecided, verify.Undecided}, 3); err == nil {
		t.Error("partial improper accepted")
	}
}

func TestEColor(t *testing.T) {
	g := graph.Star(4) // Δ=3, palette {1..5}, edges share the center
	cases := []struct {
		name   string
		colors []int
		ok     bool
	}{
		{"distinct", []int{1, 2, 3}, true},
		{"duplicate at center", []int{1, 1, 2}, false},
		{"out of palette", []int{1, 2, 6}, false},
	}
	for _, c := range cases {
		err := verify.EColor(g, c.colors)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNodeEdgeColorsAgree(t *testing.T) {
	g := graph.Line(3) // edges (0,1), (1,2); neighbor order per node sorted
	good := [][]int{{5}, {5, 7}, {7}}
	colors, err := verify.NodeEdgeColorsAgree(g, good)
	if err != nil {
		t.Fatalf("agreeing outputs rejected: %v", err)
	}
	if colors[0] != 5 || colors[1] != 7 {
		t.Errorf("colors = %v", colors)
	}
	bad := [][]int{{5}, {5, 7}, {8}}
	if _, err := verify.NodeEdgeColorsAgree(g, bad); err == nil {
		t.Error("disagreeing outputs accepted")
	}
	short := [][]int{{5}, {5}, {7}}
	if _, err := verify.NodeEdgeColorsAgree(g, short); err == nil {
		t.Error("wrong-length output accepted")
	}
}
