package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// The integration matrix is registry-driven: TestRegistryMatrix runs every
// registered (problem, algorithm) pair — whatever is registered, with no
// hand-maintained enumeration — on three graph families under both engine
// modes and validates each output with the problem's distributed checker.
// TestMatrixBounds then asserts the paper's consistency and degradation
// bounds for the algorithms where they are proved. This is the repository's
// broadest regression net.

type matrixGraph struct {
	name string
	g    *repro.Graph
}

func matrixGraphs() []matrixGraph {
	rng := repro.NewRand(777)
	return []matrixGraph{
		{"line33", repro.Line(33)},
		{"ring34", repro.Ring(34)},
		{"star21", repro.Star(21)},
		{"clique10", repro.Clique(10)},
		{"grid6x7", repro.Grid2D(6, 7)},
		{"gnp45", repro.GNP(45, 0.1, rng)},
		{"ba45", repro.BarabasiAlbert(45, 2, rng)},
		{"tree38", repro.RandomTree(38, rng)},
		{"hcube5", repro.Hypercube(5)},
		{"paths6x6", repro.DisjointPaths(6, 6)},
		{"shuffled", repro.ShuffleIDs(repro.Grid2D(5, 7), 350, rng)},
	}
}

// registryGraphsFor picks the three-family sweep for a problem: acyclic
// instances for the tree problem, general graphs for the rest.
func registryGraphsFor(p repro.ProblemInfo) []matrixGraph {
	rng := repro.NewRand(777)
	if p.Name == "tree" {
		return []matrixGraph{
			{"line33", repro.Line(33)},
			{"star21", repro.Star(21)},
			{"tree38", repro.RandomTree(38, rng)},
		}
	}
	return []matrixGraph{
		{"ring34", repro.Ring(34)},
		{"grid6x7", repro.Grid2D(6, 7)},
		{"gnp45", repro.GNP(45, 0.1, rng)},
	}
}

// TestRegistryMatrix: every registered (problem, algorithm) pair × three
// graph families × two error levels, under both engine modes. The two
// engines must agree on the output, and the problem's constant-round
// distributed checker must accept it.
func TestRegistryMatrix(t *testing.T) {
	problems := repro.Problems()
	if len(problems) < 5 {
		t.Fatalf("registry lists %d problems, want at least 5", len(problems))
	}
	for _, p := range problems {
		for _, mg := range registryGraphsFor(p) {
			for _, flips := range []int{0, 4} {
				preds, err := repro.GeneratePreds(p.Name, mg.g, flips, int64(flips)+9)
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range p.Algorithms {
					a := a
					t.Run(fmt.Sprintf("%s/%s/%s/k%d", p.Name, a.Name, mg.name, flips), func(t *testing.T) {
						seq, err := repro.RunProblem(mg.g, p.Name, a.Name, preds, repro.Options{Seed: 5})
						if err != nil {
							t.Fatal(err)
						}
						par, err := repro.RunProblem(mg.g, p.Name, a.Name, preds, repro.Options{Seed: 5, Parallel: true})
						if err != nil {
							t.Fatal(err)
						}
						if fmt.Sprint(seq.Output, seq.EdgeOutput) != fmt.Sprint(par.Output, par.EdgeOutput) {
							t.Errorf("engines disagree:\nseq: %v %v\npar: %v %v",
								seq.Output, seq.EdgeOutput, par.Output, par.EdgeOutput)
						}
						cr, err := repro.CheckSolution(mg.g, p.Name, seq, repro.Options{})
						if err != nil {
							t.Fatal(err)
						}
						if !cr.AllAccept {
							t.Errorf("distributed checker rejected the output")
						}
					})
				}
			}
		}
	}
}

var matrixErrorLevels = []int{0, 1, 5, 1 << 30 /* capped to n: everything */}

// TestMatrixBounds asserts the paper's consistency and degradation bounds on
// the full graph list: prediction-consuming algorithms finish within the
// initialization when η = 0, and the η-degrading algorithms stay within
// their proved round bounds.
func TestMatrixBounds(t *testing.T) {
	t.Run("mis", func(t *testing.T) {
		for _, mg := range matrixGraphs() {
			perfect := repro.PerfectMIS(mg.g)
			for _, k := range matrixErrorLevels {
				preds := repro.FlipBits(perfect, k, repro.NewRand(int64(k)+9))
				errs, err := repro.MISErrorReport(mg.g, preds)
				if err != nil {
					t.Fatal(err)
				}
				for _, aname := range []string{"greedy", "simple", "base", "bw", "luby", "collect", "consecutive", "decomp", "interleaved", "parallel", "uniform"} {
					aname := aname
					t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
						res, err := repro.RunProblem(mg.g, "mis", aname, preds, repro.Options{Seed: 5})
						if err != nil {
							t.Fatal(err)
						}
						if errs.Eta1 == 0 && aname != "greedy" && res.Run.Rounds > 3 {
							t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
						}
						switch aname {
						case "simple":
							if res.Run.Rounds > errs.Eta1+3 {
								t.Errorf("rounds %d > eta1+3 (%d)", res.Run.Rounds, errs.Eta1+3)
							}
						case "parallel":
							if errs.Eta2 >= 0 && res.Run.Rounds > errs.Eta2+4 {
								t.Errorf("rounds %d > eta2+4 (%d)", res.Run.Rounds, errs.Eta2+4)
							}
						}
					})
				}
			}
		}
	})
	t.Run("matching", func(t *testing.T) {
		for _, mg := range matrixGraphs() {
			perfect := repro.PerfectMatching(mg.g)
			for _, k := range matrixErrorLevels {
				preds := repro.PerturbMatching(mg.g, perfect, k, repro.NewRand(int64(k)+11))
				eta1 := repro.MatchingEta1(mg.g, preds)
				for _, aname := range []string{"greedy", "simple", "collect", "consecutive", "parallel"} {
					aname := aname
					t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
						res, err := repro.RunProblem(mg.g, "matching", aname, preds, repro.Options{})
						if err != nil {
							t.Fatal(err)
						}
						if eta1 == 0 && aname != "greedy" && res.Run.Rounds > 3 {
							t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
						}
						if aname == "simple" && res.Run.Rounds > 3*(eta1/2)+5 {
							t.Errorf("rounds %d > 3*floor(eta1/2)+5 (eta1=%d)", res.Run.Rounds, eta1)
						}
					})
				}
			}
		}
	})
	t.Run("vcolor", func(t *testing.T) {
		for _, mg := range matrixGraphs() {
			perfect := repro.PerfectVColor(mg.g)
			for _, k := range matrixErrorLevels {
				preds := repro.PerturbVColor(mg.g, perfect, k, repro.NewRand(int64(k)+13))
				eta1 := repro.VColorEta1(mg.g, preds)
				for _, aname := range []string{"greedy", "simple", "linial", "consecutive", "interleaved", "parallel"} {
					aname := aname
					t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
						res, err := repro.RunProblem(mg.g, "vcolor", aname, preds, repro.Options{})
						if err != nil {
							t.Fatal(err)
						}
						if eta1 == 0 && aname != "greedy" && res.Run.Rounds > 2 {
							t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
						}
						if aname == "simple" && res.Run.Rounds > eta1+2 {
							t.Errorf("rounds %d > eta1+2 (eta1=%d)", res.Run.Rounds, eta1)
						}
					})
				}
			}
		}
	})
	t.Run("ecolor", func(t *testing.T) {
		for _, mg := range matrixGraphs() {
			if mg.g.M() == 0 {
				continue
			}
			perfect := repro.PerfectEColor(mg.g)
			for _, k := range matrixErrorLevels {
				preds := repro.PerturbEColor(mg.g, perfect, k, repro.NewRand(int64(k)+17))
				eta1 := repro.EColorEta1(mg.g, preds)
				for _, aname := range []string{"greedy", "simple", "collect", "consecutive", "parallel"} {
					aname := aname
					t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
						res, err := repro.RunProblem(mg.g, "ecolor", aname, preds, repro.Options{})
						if err != nil {
							t.Fatal(err)
						}
						if eta1 == 0 && aname != "greedy" && res.Run.Rounds > 2 {
							t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
						}
						if aname == "simple" && eta1 > 0 && res.Run.Rounds > 2*eta1+2 {
							t.Errorf("rounds %d > 2*eta1+2 (eta1=%d)", res.Run.Rounds, eta1)
						}
					})
				}
			}
		}
	})
}

func TestMatrixCheckers(t *testing.T) {
	for _, mg := range matrixGraphs() {
		mg := mg
		t.Run(mg.name, func(t *testing.T) {
			// Perfect predictions are accepted everywhere; a corrupted
			// instance (when it corrupts at all) is rejected somewhere.
			mis := repro.PerfectMIS(mg.g)
			cr, err := repro.CheckMIS(mg.g, mis, repro.Options{})
			if err != nil || !cr.AllAccept {
				t.Fatalf("perfect MIS rejected: %v", err)
			}
			bad := append([]int(nil), mis...)
			bad[0] ^= 1
			cr, err = repro.CheckMIS(mg.g, bad, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if cr.AllAccept {
				t.Error("corrupted MIS accepted")
			}
			m, err := repro.CheckMatching(mg.g, repro.PerfectMatching(mg.g), repro.Options{})
			if err != nil || !m.AllAccept {
				t.Fatalf("perfect matching rejected: %v", err)
			}
			v, err := repro.CheckVColor(mg.g, repro.PerfectVColor(mg.g), repro.Options{})
			if err != nil || !v.AllAccept {
				t.Fatalf("perfect coloring rejected: %v", err)
			}
			if mg.g.M() > 0 {
				e, err := repro.CheckEColor(mg.g, repro.PerfectEColor(mg.g), repro.Options{})
				if err != nil || !e.AllAccept {
					t.Fatalf("perfect edge coloring rejected: %v", err)
				}
			}
		})
	}
}
