package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// The integration matrix: every problem × algorithm × graph family × error
// level, with validity checked by the public runners and consistency /
// degradation bounds asserted where the paper proves them. This is the
// repository's broadest regression net.

type matrixGraph struct {
	name string
	g    *repro.Graph
}

func matrixGraphs() []matrixGraph {
	rng := repro.NewRand(777)
	return []matrixGraph{
		{"line33", repro.Line(33)},
		{"ring34", repro.Ring(34)},
		{"star21", repro.Star(21)},
		{"clique10", repro.Clique(10)},
		{"grid6x7", repro.Grid2D(6, 7)},
		{"gnp45", repro.GNP(45, 0.1, rng)},
		{"ba45", repro.BarabasiAlbert(45, 2, rng)},
		{"tree38", repro.RandomTree(38, rng)},
		{"hcube5", repro.Hypercube(5)},
		{"paths6x6", repro.DisjointPaths(6, 6)},
		{"shuffled", repro.ShuffleIDs(repro.Grid2D(5, 7), 350, rng)},
	}
}

var matrixErrorLevels = []int{0, 1, 5, 1 << 30 /* capped to n: everything */}

func TestMatrixMIS(t *testing.T) {
	algs := map[string]repro.MISAlgorithm{
		"greedy":      repro.MISGreedy,
		"simple":      repro.MISSimple,
		"base":        repro.MISSimpleBase,
		"bw":          repro.MISSimpleBW,
		"luby":        repro.MISSimpleLuby,
		"collect":     repro.MISSimpleCollect,
		"consC":       repro.MISConsecutiveCollect,
		"consD":       repro.MISConsecutiveDecomp,
		"interleaved": repro.MISInterleavedDecomp,
		"parallel":    repro.MISParallelColoring,
		"uniform":     repro.MISSimpleUniform,
	}
	for _, mg := range matrixGraphs() {
		perfect := repro.PerfectMIS(mg.g)
		for _, k := range matrixErrorLevels {
			preds := repro.FlipBits(perfect, k, repro.NewRand(int64(k)+9))
			errs, err := repro.MISErrorReport(mg.g, preds)
			if err != nil {
				t.Fatal(err)
			}
			for aname, alg := range algs {
				aname, alg := aname, alg
				t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
					res, err := repro.RunMIS(mg.g, preds, alg, repro.Options{Seed: 5})
					if err != nil {
						t.Fatal(err)
					}
					// Consistency: prediction-consuming algorithms finish
					// within the initialization when eta = 0.
					if errs.Eta1 == 0 && alg != repro.MISGreedy && alg != repro.MISLubySolo {
						if res.Run.Rounds > 3 {
							t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
						}
					}
					// Degradation for the eta1/eta2-degrading algorithms.
					switch alg {
					case repro.MISSimple:
						if res.Run.Rounds > errs.Eta1+3 {
							t.Errorf("rounds %d > eta1+3 (%d)", res.Run.Rounds, errs.Eta1+3)
						}
					case repro.MISParallelColoring:
						if errs.Eta2 >= 0 && res.Run.Rounds > errs.Eta2+4 {
							t.Errorf("rounds %d > eta2+4 (%d)", res.Run.Rounds, errs.Eta2+4)
						}
					}
				})
			}
		}
	}
}

func TestMatrixMatching(t *testing.T) {
	algs := map[string]repro.MatchingAlgorithm{
		"greedy":   repro.MatchingGreedy,
		"simple":   repro.MatchingSimple,
		"collect":  repro.MatchingSimpleCollect,
		"cons":     repro.MatchingConsecutive,
		"parallel": repro.MatchingParallel,
	}
	for _, mg := range matrixGraphs() {
		perfect := repro.PerfectMatching(mg.g)
		for _, k := range matrixErrorLevels {
			preds := repro.PerturbMatching(mg.g, perfect, k, repro.NewRand(int64(k)+11))
			eta1 := repro.MatchingEta1(mg.g, preds)
			for aname, alg := range algs {
				aname, alg := aname, alg
				t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
					res, err := repro.RunMatching(mg.g, preds, alg, repro.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if eta1 == 0 && alg != repro.MatchingGreedy && res.Run.Rounds > 3 {
						t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
					}
					if alg == repro.MatchingSimple && res.Run.Rounds > 3*(eta1/2)+5 {
						t.Errorf("rounds %d > 3*floor(eta1/2)+5 (eta1=%d)", res.Run.Rounds, eta1)
					}
				})
			}
		}
	}
}

func TestMatrixVColor(t *testing.T) {
	algs := map[string]repro.VColorAlgorithm{
		"greedy":      repro.VColorGreedy,
		"simple":      repro.VColorSimple,
		"linial":      repro.VColorSimpleLinial,
		"cons":        repro.VColorConsecutive,
		"interleaved": repro.VColorInterleaved,
		"parallel":    repro.VColorParallel,
	}
	for _, mg := range matrixGraphs() {
		perfect := repro.PerfectVColor(mg.g)
		for _, k := range matrixErrorLevels {
			preds := repro.PerturbVColor(mg.g, perfect, k, repro.NewRand(int64(k)+13))
			eta1 := repro.VColorEta1(mg.g, preds)
			for aname, alg := range algs {
				aname, alg := aname, alg
				t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
					res, err := repro.RunVColor(mg.g, preds, alg, repro.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if eta1 == 0 && alg != repro.VColorGreedy && res.Run.Rounds > 2 {
						t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
					}
					if alg == repro.VColorSimple && res.Run.Rounds > eta1+2 {
						t.Errorf("rounds %d > eta1+2 (eta1=%d)", res.Run.Rounds, eta1)
					}
				})
			}
		}
	}
}

func TestMatrixEColor(t *testing.T) {
	algs := map[string]repro.EColorAlgorithm{
		"greedy":   repro.EColorGreedy,
		"simple":   repro.EColorSimple,
		"collect":  repro.EColorSimpleCollect,
		"cons":     repro.EColorConsecutive,
		"parallel": repro.EColorParallel,
	}
	for _, mg := range matrixGraphs() {
		if mg.g.M() == 0 {
			continue
		}
		perfect := repro.PerfectEColor(mg.g)
		for _, k := range matrixErrorLevels {
			preds := repro.PerturbEColor(mg.g, perfect, k, repro.NewRand(int64(k)+17))
			eta1 := repro.EColorEta1(mg.g, preds)
			for aname, alg := range algs {
				aname, alg := aname, alg
				t.Run(fmt.Sprintf("%s/k%d/%s", mg.name, k, aname), func(t *testing.T) {
					res, err := repro.RunEColor(mg.g, preds, alg, repro.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if eta1 == 0 && alg != repro.EColorGreedy && res.Run.Rounds > 2 {
						t.Errorf("eta=0 but %d rounds", res.Run.Rounds)
					}
					if alg == repro.EColorSimple && eta1 > 0 && res.Run.Rounds > 2*eta1+2 {
						t.Errorf("rounds %d > 2*eta1+2 (eta1=%d)", res.Run.Rounds, eta1)
					}
				})
			}
		}
	}
}

func TestMatrixCheckers(t *testing.T) {
	for _, mg := range matrixGraphs() {
		mg := mg
		t.Run(mg.name, func(t *testing.T) {
			// Perfect predictions are accepted everywhere; a corrupted
			// instance (when it corrupts at all) is rejected somewhere.
			mis := repro.PerfectMIS(mg.g)
			cr, err := repro.CheckMIS(mg.g, mis, repro.Options{})
			if err != nil || !cr.AllAccept {
				t.Fatalf("perfect MIS rejected: %v", err)
			}
			bad := append([]int(nil), mis...)
			bad[0] ^= 1
			cr, err = repro.CheckMIS(mg.g, bad, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if cr.AllAccept {
				t.Error("corrupted MIS accepted")
			}
			m, err := repro.CheckMatching(mg.g, repro.PerfectMatching(mg.g), repro.Options{})
			if err != nil || !m.AllAccept {
				t.Fatalf("perfect matching rejected: %v", err)
			}
			v, err := repro.CheckVColor(mg.g, repro.PerfectVColor(mg.g), repro.Options{})
			if err != nil || !v.AllAccept {
				t.Fatalf("perfect coloring rejected: %v", err)
			}
			if mg.g.M() > 0 {
				e, err := repro.CheckEColor(mg.g, repro.PerfectEColor(mg.g), repro.Options{})
				if err != nil || !e.AllAccept {
					t.Fatalf("perfect edge coloring rejected: %v", err)
				}
			}
		})
	}
}
