package repro

import (
	"errors"

	"repro/internal/exact"
	"repro/internal/predict"
	"repro/internal/tree"
)

// MISErrors aggregates the paper's error measures for one MIS instance with
// predictions (Sections 5 and 9).
type MISErrors struct {
	// Eta1 is the node count of the largest error component.
	Eta1 int
	// Eta2 is max over error components of 2·min{α, τ}; Eta2 <= Eta1. It is
	// -1 when a component exceeded the exact solver's size or step budget.
	Eta2 int
	// EtaBW is the largest black or white component; EtaBW <= Eta1.
	EtaBW int
	// EtaH is the minimum Hamming distance to a maximal independent set, or
	// -1 when the graph is too large for exact computation.
	EtaH int
	// Components is the number of error components.
	Components int
}

// MISErrorReport computes the MIS error measures for (g, preds). The error
// components are always defined by the Base Algorithm, independent of which
// initialization an algorithm uses.
func MISErrorReport(g *Graph, preds []int) (MISErrors, error) {
	active := predict.MISBaseActive(g, preds)
	comps := predict.ErrorComponents(g, active)
	eta2, err := predict.Eta2(comps)
	if errors.Is(err, exact.ErrTooLarge) {
		eta2 = -1
	} else if err != nil {
		return MISErrors{}, err
	}
	etaH := -1
	if h, err := predict.EtaH(g, preds); err == nil {
		etaH = h
	} else if !errors.Is(err, exact.ErrTooLarge) {
		return MISErrors{}, err
	}
	return MISErrors{
		Eta1:       predict.Eta1(comps),
		Eta2:       eta2,
		EtaBW:      predict.EtaBW(g, preds, active),
		EtaH:       etaH,
		Components: len(comps),
	}, nil
}

// TreeEtaT computes the rooted-tree error measure η_t: one plus the maximum
// height of the black and white components after the Base Algorithm.
func TreeEtaT(r *Rooted, preds []int) int {
	active := predict.MISBaseActive(r.G, preds)
	return tree.EtaT(r, preds, active)
}

// MatchingEta1 computes η₁ for a maximal-matching instance with predictions.
func MatchingEta1(g *Graph, preds []int) int {
	active := predict.MatchingBaseActive(g, preds)
	return predict.Eta1(predict.ErrorComponents(g, active))
}

// VColorEta1 computes η₁ for a (Δ+1)-vertex-coloring instance.
func VColorEta1(g *Graph, preds []int) int {
	active := predict.VColorBaseActive(g, preds)
	return predict.Eta1(predict.ErrorComponents(g, active))
}

// EColorEta1 computes η₁ (node count of the largest edge error component)
// for a (2Δ−1)-edge-coloring instance.
func EColorEta1(g *Graph, preds []EdgePrediction) int {
	uncolored := predict.EColorBaseUncolored(g, preds)
	return predict.Eta1(predict.EdgeErrorComponents(g, uncolored))
}

// Alpha returns the independence number α(g) (exact branch and bound).
func Alpha(g *Graph) (int, error) { return exact.Alpha(g) }

// Tau returns the vertex cover number τ(g) = n − α(g).
func Tau(g *Graph) (int, error) { return exact.Tau(g) }
