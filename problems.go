package repro

import (
	"fmt"

	"repro/internal/ecolor"
	"repro/internal/linegraph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/tree"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

// MISAlgorithm selects an MIS algorithm (with or without predictions).
type MISAlgorithm int

// The MIS algorithms. The Greedy variant ignores predictions (Algorithm 1
// run alone); the rest are template instantiations from Section 7 and
// Section 9.1 of the paper.
const (
	// MISGreedy is the measure-uniform Greedy MIS Algorithm alone.
	MISGreedy MISAlgorithm = iota + 1
	// MISSimple is Simple(Init, Greedy): η₁- and η₂-degrading.
	MISSimple
	// MISSimpleBase is Simple(Base, Greedy), for initialization comparisons.
	MISSimpleBase
	// MISSimpleBW is Simple(Init, U_bw), tracking η_bw (Section 9.1).
	MISSimpleBW
	// MISSimpleLuby is Simple(Init, Luby) (Section 10).
	MISSimpleLuby
	// MISSimpleCollect is Simple(Init, collect-and-solve).
	MISSimpleCollect
	// MISConsecutiveCollect is Consecutive with the collect reference.
	MISConsecutiveCollect
	// MISConsecutiveDecomp is Consecutive with the decomposition reference.
	MISConsecutiveDecomp
	// MISInterleavedDecomp is Interleaved with the decomposition reference
	// (Corollary 10's shape).
	MISInterleavedDecomp
	// MISParallelColoring is the Corollary 12 Parallel Template.
	MISParallelColoring
	// MISLubySolo is Luby's algorithm alone (randomized baseline).
	MISLubySolo
	// MISSimpleUniform is the Simple Template with the Δ-doubling
	// coloring reference, whose round complexity depends on the error
	// components' maximum degree Δ' (and log* d), not the global Δ
	// (Section 7.1, second example).
	MISSimpleUniform
)

// MISResult is the outcome of an MIS run.
type MISResult struct {
	// Run carries the round/message metrics.
	Run Result
	// InSet is the 0/1 output per node index, verified maximal independent.
	InSet []int
}

// MISFactory returns the engine factory for an algorithm choice.
func MISFactory(alg MISAlgorithm, seed int64) (runtime.Factory, error) {
	switch alg {
	case MISGreedy:
		return mis.Solo(mis.Greedy()), nil
	case MISSimple:
		return mis.SimpleGreedy(), nil
	case MISSimpleBase:
		return mis.SimpleBase(), nil
	case MISSimpleBW:
		return mis.SimpleBW(), nil
	case MISSimpleLuby:
		return mis.SimpleLuby(seed), nil
	case MISSimpleCollect:
		return mis.SimpleCollect(), nil
	case MISConsecutiveCollect:
		return mis.ConsecutiveCollect(), nil
	case MISConsecutiveDecomp:
		return mis.ConsecutiveDecomp(seed), nil
	case MISInterleavedDecomp:
		return mis.InterleavedDecomp(seed), nil
	case MISParallelColoring:
		return mis.ParallelColoring(), nil
	case MISLubySolo:
		return mis.Solo(mis.Luby(seed)), nil
	case MISSimpleUniform:
		return mis.SimpleUniform(), nil
	default:
		return nil, fmt.Errorf("repro: unknown MIS algorithm %d", alg)
	}
}

// RunMIS executes the chosen MIS algorithm on g with the given predictions
// (nil for prediction-free algorithms) and verifies the output.
func RunMIS(g *Graph, preds []int, alg MISAlgorithm, opts Options) (*MISResult, error) {
	factory, err := MISFactory(alg, opts.Seed)
	if err != nil {
		return nil, err
	}
	if alg == MISSimpleUniform && opts.MaxRounds == 0 {
		// The Δ-doubling reference can legitimately exceed the engine's
		// O(n)-algorithm default cap on small dense graphs.
		opts.MaxRounds = mis.UniformMaxRounds(runtime.NodeInfo{N: g.N(), D: g.D(), Delta: g.MaxDegree()})
	}
	if opts.Recover {
		rr, err := runRecovered(g, factory, intPreds(preds), opts, misHealSpec())
		if err != nil {
			return nil, err
		}
		return &MISResult{Run: rr.asResult(), InSet: rr.Output}, nil
	}
	raw, err := runAndCollect(g, factory, intPreds(preds), opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.N())
	for i, o := range raw.Outputs {
		bit, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("repro: node %d produced %T, want int", g.ID(i), o)
		}
		out[i] = bit
	}
	if err := verify.MIS(g, out); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &MISResult{Run: baseResult(raw), InSet: out}, nil
}

// RunMISTradeoff runs the Section 10 consistency/robustness trade-off
// variant of the Consecutive Template: the measure-uniform stage is budgeted
// λ·n rounds before the decomposition reference takes over. λ = 0 trusts the
// predictions only through the initialization; λ ≥ 1 matches the Greedy
// algorithm's worst-case needs.
func RunMISTradeoff(g *Graph, preds []int, lambda float64, opts Options) (*MISResult, error) {
	if opts.Recover {
		rr, err := runRecovered(g, mis.ConsecutiveTradeoff(lambda, opts.Seed), intPreds(preds), opts, misHealSpec())
		if err != nil {
			return nil, err
		}
		return &MISResult{Run: rr.asResult(), InSet: rr.Output}, nil
	}
	raw, err := runAndCollect(g, mis.ConsecutiveTradeoff(lambda, opts.Seed), intPreds(preds), opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.N())
	for i, o := range raw.Outputs {
		bit, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("repro: node %d produced %T, want int", g.ID(i), o)
		}
		out[i] = bit
	}
	if err := verify.MIS(g, out); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &MISResult{Run: baseResult(raw), InSet: out}, nil
}

// TreeMISAlgorithm selects a rooted-tree MIS algorithm (Section 9.2).
type TreeMISAlgorithm int

// The rooted-tree MIS algorithms.
const (
	// TreeRootsLeaves is Algorithm 6 alone.
	TreeRootsLeaves TreeMISAlgorithm = iota + 1
	// TreeSimple is the rooted-tree initialization followed by Algorithm 6:
	// round complexity at most ⌈η_t/2⌉+5.
	TreeSimple
	// TreeParallel is the Corollary 15 Parallel Template with the GPS
	// 3-coloring reference: min{⌈η_t/2⌉+5, O(log* d)}.
	TreeParallel
	// TreeConsecutive is the Consecutive Template on rooted trees with the
	// GPS reference.
	TreeConsecutive
)

// RunTreeMIS executes a rooted-tree MIS algorithm and verifies the output.
func RunTreeMIS(r *Rooted, preds []int, alg TreeMISAlgorithm, opts Options) (*MISResult, error) {
	var factory runtime.Factory
	switch alg {
	case TreeRootsLeaves:
		factory = tree.Solo(r, tree.RootsAndLeaves(0))
	case TreeSimple:
		factory = tree.SimpleRootsLeaves(r)
	case TreeParallel:
		factory = tree.ParallelColoring(r)
	case TreeConsecutive:
		factory = tree.ConsecutiveColoring(r)
	default:
		return nil, fmt.Errorf("repro: unknown tree MIS algorithm %d", alg)
	}
	if opts.Recover {
		// The healing run uses the general MIS Simple Template: MIS on the
		// underlying graph is what the tree algorithms compute too.
		rr, err := runRecovered(r.G, factory, intPreds(preds), opts, misHealSpec())
		if err != nil {
			return nil, err
		}
		return &MISResult{Run: rr.asResult(), InSet: rr.Output}, nil
	}
	raw, err := runAndCollect(r.G, factory, intPreds(preds), opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, r.G.N())
	for i, o := range raw.Outputs {
		bit, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("repro: node %d produced %T, want int", r.G.ID(i), o)
		}
		out[i] = bit
	}
	if err := verify.MIS(r.G, out); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &MISResult{Run: baseResult(raw), InSet: out}, nil
}

// MatchingAlgorithm selects a maximal-matching algorithm (Section 8.1).
type MatchingAlgorithm int

// The maximal-matching algorithms.
const (
	// MatchingGreedy is the 3-round-group measure-uniform algorithm alone.
	MatchingGreedy MatchingAlgorithm = iota + 1
	// MatchingSimple is Simple(Init, measure-uniform).
	MatchingSimple
	// MatchingSimpleCollect is Simple(Init, collect-and-solve).
	MatchingSimpleCollect
	// MatchingConsecutive is the Consecutive Template with collect.
	MatchingConsecutive
	// MatchingParallel is the Parallel Template with the fault-tolerant
	// edge-coloring reference (a Corollary 12 analogue for matching).
	MatchingParallel
)

// MatchingResult is the outcome of a matching run.
type MatchingResult struct {
	// Run carries the round/message metrics.
	Run Result
	// Partner is the matched neighbor's identifier per node index, or
	// Unmatched.
	Partner []int
}

// RunMatching executes the chosen matching algorithm and verifies the
// output.
func RunMatching(g *Graph, preds []int, alg MatchingAlgorithm, opts Options) (*MatchingResult, error) {
	var factory runtime.Factory
	switch alg {
	case MatchingGreedy:
		factory = matching.Solo(matching.MeasureUniform(0))
	case MatchingSimple:
		factory = matching.SimpleGreedy()
	case MatchingSimpleCollect:
		factory = matching.SimpleCollect()
	case MatchingConsecutive:
		factory = matching.ConsecutiveCollect()
	case MatchingParallel:
		factory = matching.ParallelColoring()
		if opts.MaxRounds == 0 {
			// The line-graph coloring reference can legitimately exceed the
			// O(n)-algorithm default cap (its bound is O(Δ²·polylog), the
			// documented substitution cost).
			opts.MaxRounds = edgeRefMaxRounds(g)
		}
	default:
		return nil, fmt.Errorf("repro: unknown matching algorithm %d", alg)
	}
	if opts.Recover {
		rr, err := runRecovered(g, factory, intPreds(preds), opts, matchingHealSpec())
		if err != nil {
			return nil, err
		}
		return &MatchingResult{Run: rr.asResult(), Partner: rr.Output}, nil
	}
	raw, err := runAndCollect(g, factory, intPreds(preds), opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.N())
	for i, o := range raw.Outputs {
		v, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("repro: node %d produced %T, want int", g.ID(i), o)
		}
		out[i] = v
	}
	if err := verify.Matching(g, out); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &MatchingResult{Run: baseResult(raw), Partner: out}, nil
}

// VColorAlgorithm selects a (Δ+1)-vertex-coloring algorithm (Section 8.2).
type VColorAlgorithm int

// The vertex-coloring algorithms.
const (
	// VColorGreedy is the measure-uniform list-coloring algorithm alone.
	VColorGreedy VColorAlgorithm = iota + 1
	// VColorSimple is Simple(Init, measure-uniform).
	VColorSimple
	// VColorSimpleLinial is Simple(Init, list-aware Linial).
	VColorSimpleLinial
	// VColorConsecutive is the Consecutive Template with the Linial
	// reference (no clean-up needed for this problem).
	VColorConsecutive
	// VColorLinial is the Linial coloring alone (no predictions).
	VColorLinial
	// VColorInterleaved is the Interleaved Template with the Linial
	// reference.
	VColorInterleaved
	// VColorParallel is the Parallel Template: the measure-uniform
	// algorithm alongside the fault-tolerant Linial coloring, with a
	// palette-repair second part.
	VColorParallel
)

// VColorResult is the outcome of a vertex-coloring run.
type VColorResult struct {
	// Run carries the round/message metrics.
	Run Result
	// Color is the output color per node index, in {1, ..., Δ+1}.
	Color []int
}

// RunVColor executes the chosen vertex-coloring algorithm and verifies the
// output.
func RunVColor(g *Graph, preds []int, alg VColorAlgorithm, opts Options) (*VColorResult, error) {
	var factory runtime.Factory
	switch alg {
	case VColorGreedy:
		factory = vcolor.Solo(vcolor.MeasureUniform(0))
	case VColorSimple:
		factory = vcolor.SimpleGreedy()
	case VColorSimpleLinial:
		factory = vcolor.SimpleLinial()
	case VColorConsecutive:
		factory = vcolor.ConsecutiveLinial()
	case VColorLinial:
		factory = vcolor.Solo(vcolor.LinialStandalone())
	case VColorInterleaved:
		factory = vcolor.InterleavedLinial()
	case VColorParallel:
		factory = vcolor.ParallelLinial()
	default:
		return nil, fmt.Errorf("repro: unknown vertex-coloring algorithm %d", alg)
	}
	if opts.Recover {
		rr, err := runRecovered(g, factory, intPreds(preds), opts, vcolorHealSpec())
		if err != nil {
			return nil, err
		}
		return &VColorResult{Run: rr.asResult(), Color: rr.Output}, nil
	}
	raw, err := runAndCollect(g, factory, intPreds(preds), opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, g.N())
	for i, o := range raw.Outputs {
		v, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("repro: node %d produced %T, want int", g.ID(i), o)
		}
		out[i] = v
	}
	if err := verify.VColor(g, out); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &VColorResult{Run: baseResult(raw), Color: out}, nil
}

// EColorAlgorithm selects a (2Δ−1)-edge-coloring algorithm (Section 8.3).
type EColorAlgorithm int

// The edge-coloring algorithms.
const (
	// EColorGreedy is the distance-2 measure-uniform algorithm alone.
	EColorGreedy EColorAlgorithm = iota + 1
	// EColorSimple is Simple(Base, measure-uniform).
	EColorSimple
	// EColorSimpleCollect is Simple(Base, collect-and-solve).
	EColorSimpleCollect
	// EColorConsecutive is the Consecutive Template with collect.
	EColorConsecutive
	// EColorParallel is the Parallel Template with the fault-tolerant
	// line-graph coloring reference and a repair-and-output second part.
	EColorParallel
)

// EColorResult is the outcome of an edge-coloring run.
type EColorResult struct {
	// Run carries the round/message metrics.
	Run Result
	// EdgeColor is the color per edge, indexed like Graph.Edges().
	EdgeColor []int
}

// RunEColor executes the chosen edge-coloring algorithm, checks endpoint
// agreement, and verifies the coloring.
func RunEColor(g *Graph, preds []EdgePrediction, alg EColorAlgorithm, opts Options) (*EColorResult, error) {
	var factory runtime.Factory
	switch alg {
	case EColorGreedy:
		factory = ecolor.Solo(ecolor.MeasureUniform(0))
	case EColorSimple:
		factory = ecolor.SimpleGreedy()
	case EColorSimpleCollect:
		factory = ecolor.SimpleCollect()
	case EColorConsecutive:
		factory = ecolor.ConsecutiveCollect()
	case EColorParallel:
		factory = ecolor.ParallelColoring()
		if opts.MaxRounds == 0 {
			opts.MaxRounds = edgeRefMaxRounds(g)
		}
	default:
		return nil, fmt.Errorf("repro: unknown edge-coloring algorithm %d", alg)
	}
	if opts.Recover {
		// Edge-coloring outputs are per-node vectors; the int-vector carving
		// machinery does not apply.
		return nil, fmt.Errorf("repro: Options.Recover is not supported for edge coloring")
	}
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = []int(p)
		}
	}
	raw, err := runAndCollect(g, factory, anyPreds, opts)
	if err != nil {
		return nil, err
	}
	outs := make([][]int, g.N())
	for i, o := range raw.Outputs {
		v, ok := o.([]int)
		if !ok {
			return nil, fmt.Errorf("repro: node %d produced %T, want []int", g.ID(i), o)
		}
		outs[i] = v
	}
	colors, err := verify.NodeEdgeColorsAgree(g, outs)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	if g.M() > 0 {
		if err := verify.EColor(g, colors); err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
	}
	return &EColorResult{Run: baseResult(raw), EdgeColor: colors}, nil
}

// edgeRefMaxRounds returns a safe engine cap for the algorithms whose
// reference is the line-graph Linial coloring.
func edgeRefMaxRounds(g *Graph) int {
	delta := g.MaxDegree()
	return 8*g.N() + 64 + linegraph.Rounds(g.D(), delta) + 2*(2*delta+1) + 16
}

// Ensure predict's Unmatched matches matching's (compile-time check).
var _ = [1]struct{}{}[predict.Unmatched-matching.Unmatched]
