package repro

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/problem"
	"repro/internal/runtime"
)

// This file keeps the typed per-problem entry points (enums, Result shapes,
// Run* functions) as thin shims over the registry's generic run path in
// registry.go — backward compatible by construction: every shim maps its
// enum to the registered algorithm name and delegates to runGeneric.

// MISAlgorithm selects an MIS algorithm (with or without predictions).
type MISAlgorithm int

// The MIS algorithms. The Greedy variant ignores predictions (Algorithm 1
// run alone); the rest are template instantiations from Section 7 and
// Section 9.1 of the paper.
const (
	// MISGreedy is the measure-uniform Greedy MIS Algorithm alone.
	MISGreedy MISAlgorithm = iota + 1
	// MISSimple is Simple(Init, Greedy): η₁- and η₂-degrading.
	MISSimple
	// MISSimpleBase is Simple(Base, Greedy), for initialization comparisons.
	MISSimpleBase
	// MISSimpleBW is Simple(Init, U_bw), tracking η_bw (Section 9.1).
	MISSimpleBW
	// MISSimpleLuby is Simple(Init, Luby) (Section 10).
	MISSimpleLuby
	// MISSimpleCollect is Simple(Init, collect-and-solve).
	MISSimpleCollect
	// MISConsecutiveCollect is Consecutive with the collect reference.
	MISConsecutiveCollect
	// MISConsecutiveDecomp is Consecutive with the decomposition reference.
	MISConsecutiveDecomp
	// MISInterleavedDecomp is Interleaved with the decomposition reference
	// (Corollary 10's shape).
	MISInterleavedDecomp
	// MISParallelColoring is the Corollary 12 Parallel Template.
	MISParallelColoring
	// MISLubySolo is Luby's algorithm alone (randomized baseline).
	MISLubySolo
	// MISSimpleUniform is the Simple Template with the Δ-doubling
	// coloring reference, whose round complexity depends on the error
	// components' maximum degree Δ' (and log* d), not the global Δ
	// (Section 7.1, second example).
	MISSimpleUniform
)

// misAlgNames maps the enum to the registered algorithm names.
var misAlgNames = map[MISAlgorithm]string{
	MISGreedy:             "greedy",
	MISSimple:             "simple",
	MISSimpleBase:         "base",
	MISSimpleBW:           "bw",
	MISSimpleLuby:         "luby",
	MISSimpleCollect:      "collect",
	MISConsecutiveCollect: "consecutive",
	MISConsecutiveDecomp:  "decomp",
	MISInterleavedDecomp:  "interleaved",
	MISParallelColoring:   "parallel",
	MISLubySolo:           "lubysolo",
	MISSimpleUniform:      "uniform",
}

// MISResult is the outcome of an MIS run.
type MISResult struct {
	// Run carries the round/message metrics.
	Run Result
	// InSet is the 0/1 output per node index, verified maximal independent.
	InSet []int
}

// MISFactory returns the engine factory for an algorithm choice.
func MISFactory(alg MISAlgorithm, seed int64) (runtime.Factory, error) {
	name, ok := misAlgNames[alg]
	if !ok {
		return nil, fmt.Errorf("repro: unknown MIS algorithm %d", alg)
	}
	d, err := problem.Get("mis")
	if err != nil {
		return nil, err
	}
	a, err := d.Algorithm(name)
	if err != nil {
		return nil, err
	}
	return a.Build(problem.BuildCtx{Seed: seed})
}

// RunMIS executes the chosen MIS algorithm on g with the given predictions
// (nil for prediction-free algorithms) and verifies the output.
func RunMIS(g *Graph, preds []int, alg MISAlgorithm, opts Options) (*MISResult, error) {
	name, ok := misAlgNames[alg]
	if !ok {
		return nil, fmt.Errorf("repro: unknown MIS algorithm %d", alg)
	}
	res, err := RunProblem(g, "mis", name, preds, opts)
	if err != nil {
		return nil, err
	}
	return &MISResult{Run: res.Run, InSet: res.Output}, nil
}

// RunMISTradeoff runs the Section 10 consistency/robustness trade-off
// variant of the Consecutive Template: the measure-uniform stage is budgeted
// λ·n rounds before the decomposition reference takes over. λ = 0 trusts the
// predictions only through the initialization; λ ≥ 1 matches the Greedy
// algorithm's worst-case needs. The λ knob is continuous, so this variant
// stays outside the registry's named algorithms and plugs its factory into
// the same generic machinery.
func RunMISTradeoff(g *Graph, preds []int, lambda float64, opts Options) (*MISResult, error) {
	d, err := problem.Get("mis")
	if err != nil {
		return nil, err
	}
	factory := mis.ConsecutiveTradeoff(lambda, opts.Seed)
	if opts.Recover {
		spec, err := healSpecFor(d)
		if err != nil {
			return nil, err
		}
		rr, err := runRecovered(g, factory, intPreds(preds), opts, spec)
		if err != nil {
			return nil, err
		}
		return &MISResult{Run: rr.asResult(), InSet: rr.Output}, nil
	}
	raw, err := runAndCollect(g, factory, intPreds(preds), opts)
	if err != nil {
		return nil, err
	}
	sol, err := d.Finalize(g, nil, raw.Outputs)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &MISResult{Run: baseResult(raw), InSet: sol.Node}, nil
}

// TreeMISAlgorithm selects a rooted-tree MIS algorithm (Section 9.2).
type TreeMISAlgorithm int

// The rooted-tree MIS algorithms.
const (
	// TreeRootsLeaves is Algorithm 6 alone.
	TreeRootsLeaves TreeMISAlgorithm = iota + 1
	// TreeSimple is the rooted-tree initialization followed by Algorithm 6:
	// round complexity at most ⌈η_t/2⌉+5.
	TreeSimple
	// TreeParallel is the Corollary 15 Parallel Template with the GPS
	// 3-coloring reference: min{⌈η_t/2⌉+5, O(log* d)}.
	TreeParallel
	// TreeConsecutive is the Consecutive Template on rooted trees with the
	// GPS reference.
	TreeConsecutive
)

// treeAlgNames maps the enum to the registered algorithm names.
var treeAlgNames = map[TreeMISAlgorithm]string{
	TreeRootsLeaves: "greedy",
	TreeSimple:      "simple",
	TreeParallel:    "parallel",
	TreeConsecutive: "consecutive",
}

// RunTreeMIS executes a rooted-tree MIS algorithm and verifies the output.
// The rooted forest is passed explicitly (the registry's default auxiliary
// data would re-root the graph at node 0).
func RunTreeMIS(r *Rooted, preds []int, alg TreeMISAlgorithm, opts Options) (*MISResult, error) {
	name, ok := treeAlgNames[alg]
	if !ok {
		return nil, fmt.Errorf("repro: unknown tree MIS algorithm %d", alg)
	}
	d, err := problem.Get("tree")
	if err != nil {
		return nil, err
	}
	res, err := runGeneric(r.G, d, name, r, preds, opts)
	if err != nil {
		return nil, err
	}
	return &MISResult{Run: res.Run, InSet: res.Output}, nil
}

// MatchingAlgorithm selects a maximal-matching algorithm (Section 8.1).
type MatchingAlgorithm int

// The maximal-matching algorithms.
const (
	// MatchingGreedy is the 3-round-group measure-uniform algorithm alone.
	MatchingGreedy MatchingAlgorithm = iota + 1
	// MatchingSimple is Simple(Init, measure-uniform).
	MatchingSimple
	// MatchingSimpleCollect is Simple(Init, collect-and-solve).
	MatchingSimpleCollect
	// MatchingConsecutive is the Consecutive Template with collect.
	MatchingConsecutive
	// MatchingParallel is the Parallel Template with the fault-tolerant
	// edge-coloring reference (a Corollary 12 analogue for matching).
	MatchingParallel
)

// matchingAlgNames maps the enum to the registered algorithm names.
var matchingAlgNames = map[MatchingAlgorithm]string{
	MatchingGreedy:        "greedy",
	MatchingSimple:        "simple",
	MatchingSimpleCollect: "collect",
	MatchingConsecutive:   "consecutive",
	MatchingParallel:      "parallel",
}

// MatchingResult is the outcome of a matching run.
type MatchingResult struct {
	// Run carries the round/message metrics.
	Run Result
	// Partner is the matched neighbor's identifier per node index, or
	// Unmatched.
	Partner []int
}

// RunMatching executes the chosen matching algorithm and verifies the
// output.
func RunMatching(g *Graph, preds []int, alg MatchingAlgorithm, opts Options) (*MatchingResult, error) {
	name, ok := matchingAlgNames[alg]
	if !ok {
		return nil, fmt.Errorf("repro: unknown matching algorithm %d", alg)
	}
	res, err := RunProblem(g, "matching", name, preds, opts)
	if err != nil {
		return nil, err
	}
	return &MatchingResult{Run: res.Run, Partner: res.Output}, nil
}

// VColorAlgorithm selects a (Δ+1)-vertex-coloring algorithm (Section 8.2).
type VColorAlgorithm int

// The vertex-coloring algorithms.
const (
	// VColorGreedy is the measure-uniform list-coloring algorithm alone.
	VColorGreedy VColorAlgorithm = iota + 1
	// VColorSimple is Simple(Init, measure-uniform).
	VColorSimple
	// VColorSimpleLinial is Simple(Init, list-aware Linial).
	VColorSimpleLinial
	// VColorConsecutive is the Consecutive Template with the Linial
	// reference (no clean-up needed for this problem).
	VColorConsecutive
	// VColorLinial is the Linial coloring alone (no predictions).
	VColorLinial
	// VColorInterleaved is the Interleaved Template with the Linial
	// reference.
	VColorInterleaved
	// VColorParallel is the Parallel Template: the measure-uniform
	// algorithm alongside the fault-tolerant Linial coloring, with a
	// palette-repair second part.
	VColorParallel
)

// vcolorAlgNames maps the enum to the registered algorithm names.
var vcolorAlgNames = map[VColorAlgorithm]string{
	VColorGreedy:       "greedy",
	VColorSimple:       "simple",
	VColorSimpleLinial: "linial",
	VColorConsecutive:  "consecutive",
	VColorLinial:       "standalone",
	VColorInterleaved:  "interleaved",
	VColorParallel:     "parallel",
}

// VColorResult is the outcome of a vertex-coloring run.
type VColorResult struct {
	// Run carries the round/message metrics.
	Run Result
	// Color is the output color per node index, in {1, ..., Δ+1}.
	Color []int
}

// RunVColor executes the chosen vertex-coloring algorithm and verifies the
// output.
func RunVColor(g *Graph, preds []int, alg VColorAlgorithm, opts Options) (*VColorResult, error) {
	name, ok := vcolorAlgNames[alg]
	if !ok {
		return nil, fmt.Errorf("repro: unknown vertex-coloring algorithm %d", alg)
	}
	res, err := RunProblem(g, "vcolor", name, preds, opts)
	if err != nil {
		return nil, err
	}
	return &VColorResult{Run: res.Run, Color: res.Output}, nil
}

// EColorAlgorithm selects a (2Δ−1)-edge-coloring algorithm (Section 8.3).
type EColorAlgorithm int

// The edge-coloring algorithms.
const (
	// EColorGreedy is the distance-2 measure-uniform algorithm alone.
	EColorGreedy EColorAlgorithm = iota + 1
	// EColorSimple is Simple(Base, measure-uniform).
	EColorSimple
	// EColorSimpleCollect is Simple(Base, collect-and-solve).
	EColorSimpleCollect
	// EColorConsecutive is the Consecutive Template with collect.
	EColorConsecutive
	// EColorParallel is the Parallel Template with the fault-tolerant
	// line-graph coloring reference and a repair-and-output second part.
	EColorParallel
)

// ecolorAlgNames maps the enum to the registered algorithm names.
var ecolorAlgNames = map[EColorAlgorithm]string{
	EColorGreedy:        "greedy",
	EColorSimple:        "simple",
	EColorSimpleCollect: "collect",
	EColorConsecutive:   "consecutive",
	EColorParallel:      "parallel",
}

// EColorResult is the outcome of an edge-coloring run.
type EColorResult struct {
	// Run carries the round/message metrics.
	Run Result
	// EdgeColor is the color per edge, indexed like Graph.Edges().
	EdgeColor []int
}

// RunEColor executes the chosen edge-coloring algorithm, checks endpoint
// agreement, and verifies the coloring.
func RunEColor(g *Graph, preds []EdgePrediction, alg EColorAlgorithm, opts Options) (*EColorResult, error) {
	name, ok := ecolorAlgNames[alg]
	if !ok {
		return nil, fmt.Errorf("repro: unknown edge-coloring algorithm %d", alg)
	}
	res, err := RunProblem(g, "ecolor", name, preds, opts)
	if err != nil {
		return nil, err
	}
	return &EColorResult{Run: res.Run, EdgeColor: res.EdgeOutput}, nil
}

// Ensure predict's Unmatched matches matching's (compile-time check).
var _ = [1]struct{}{}[predict.Unmatched-matching.Unmatched]
