package repro_test

import (
	"os"
	"strings"
	"testing"

	"repro"
)

// TestReadmeRegistryTable: the README's algorithm table is generated from
// the registry (`dgp-run -list`); this asserts the two cannot drift apart.
func TestReadmeRegistryTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	want := "<!-- registry:begin -->\n```\n" + repro.RegistryTable() + "```\n<!-- registry:end -->"
	if !strings.Contains(string(data), want) {
		t.Fatalf("README registry table is out of sync with the registry;\n"+
			"update the block between the registry markers with the output of\n"+
			"`go run ./cmd/dgp-run -list`\n\nwant:\n%s", want)
	}
}
