package repro

import (
	"fmt"

	"repro/internal/heal"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Problem names a problem for RunWithRecovery.
type Problem int

// The problems with a recovery path. Their outputs are int vectors — MIS
// bit, partner identifier (Unmatched for none), or color — which is what
// the carving step operates on.
const (
	// ProblemMIS is maximal independent set.
	ProblemMIS Problem = iota + 1
	// ProblemMatching is maximal matching.
	ProblemMatching
	// ProblemVColor is (Δ+1)-vertex coloring.
	ProblemVColor
)

// problemNames maps the enum to the registered problem names.
var problemNames = map[Problem]string{
	ProblemMIS:      "mis",
	ProblemMatching: "matching",
	ProblemVColor:   "vcolor",
}

// RecoveryResult reports a self-healing run: the faulted primary run, the
// damage found, and the healing run's cost — the paper-style degradation
// metric (recovery rounds proportional to the damage, not the graph).
type RecoveryResult struct {
	// PrimaryErr is the primary run's error when it aborted — a contained
	// machine panic, a round-deadline hit, no termination, or a protocol
	// violation (e.g. corrupted payloads rejected by a template machine).
	// Recovery then proceeded from the last observed outputs. Nil when the
	// primary run completed.
	PrimaryErr error
	// Valid reports that the primary outputs verified as-is; no healing ran.
	Valid bool
	// Healed reports that a healing run executed and its output verified.
	Healed bool
	// Residual is the number of nodes the healing run had to re-decide
	// after carving (0 when Valid).
	Residual int
	// PrimaryRounds is the last round the primary run executed.
	PrimaryRounds int
	// PrimaryMessages counts the primary run's delivered messages.
	PrimaryMessages int
	// RecoveryRounds and RecoveryMessages are the healing run's cost — the
	// degradation metric (0 when Valid).
	RecoveryRounds   int
	RecoveryMessages int
	// Output is the final verified output vector: MIS bits, partner
	// identifiers, or colors, by node index.
	Output []int
}

// TotalRounds is the end-to-end cost: primary rounds plus recovery rounds.
func (r *RecoveryResult) TotalRounds() int { return r.PrimaryRounds + r.RecoveryRounds }

// RunWithRecovery executes the problem's Simple Template on g under the
// options' fault knobs (Adversary, Crashes, RoundDeadline) and self-heals:
// if the run aborts or produces an invalid solution, the damaged outputs
// are carved down to an extendable partial solution (invalid values,
// conflicting pairs, and unjustified decisions demoted) and the Simple
// Template is re-run with the carved partial solution as predictions — the
// paper's Section 4 initialization keeps every decided node and the
// measure-uniform part extends the residual. The returned output always
// verifies; crashed nodes are treated as recovered in the healing run
// (chaos is transient). Configuration errors are returned, not healed.
func RunWithRecovery(g *Graph, problem Problem, preds []int, opts Options) (*RecoveryResult, error) {
	name, ok := problemNames[problem]
	if !ok {
		return nil, fmt.Errorf("repro: unknown problem %d", problem)
	}
	return RunProblemWithRecovery(g, name, preds, opts)
}

// runRecovered is the engine-level recovery path behind RunProblemWithRecovery
// and the Options.Recover flag on the generic run path.
func runRecovered(g *Graph, factory runtime.Factory, preds []any, opts Options, spec heal.Spec) (*RecoveryResult, error) {
	cfg := buildConfig(g, factory, preds, opts)
	report, err := heal.RunRecovered(cfg, spec)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil && !report.Valid {
		// η trajectory: the carve left Residual undecided nodes; after the
		// verified healing run the error measure is back to zero.
		opts.Trace.Emit(obs.Event{Type: obs.EvEta, Name: "residual", Value: int64(report.Residual)})
		opts.Trace.Emit(obs.Event{Type: obs.EvEta, Name: "healed", Value: 0})
	}
	return &RecoveryResult{
		PrimaryErr:       report.PrimaryErr,
		Valid:            report.Valid,
		Healed:           report.Healed,
		Residual:         report.Residual,
		PrimaryRounds:    report.PrimaryRounds,
		PrimaryMessages:  report.PrimaryMessages,
		RecoveryRounds:   report.RecoveryRounds,
		RecoveryMessages: report.RecoveryMessages,
		Output:           report.Output,
	}, nil
}

// asResult condenses a recovery into the Run*-style metrics: total rounds
// and messages across primary and healing runs. TerminatedAt is nil and
// MaxMsgBits -1 (per-run detail does not compose across the two runs).
func (r *RecoveryResult) asResult() Result {
	return Result{
		Rounds:     r.TotalRounds(),
		Messages:   r.PrimaryMessages + r.RecoveryMessages,
		MaxMsgBits: -1,
	}
}
