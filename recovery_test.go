package repro_test

import (
	"testing"
	"time"

	"repro"
)

// checkMIS asserts out is a maximal independent set of g.
func checkMIS(t *testing.T, g *repro.Graph, out []int) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if out[v] != 0 && out[v] != 1 {
			t.Fatalf("node %d output %d", v, out[v])
		}
	}
	for v := 0; v < g.N(); v++ {
		sawOne := out[v] == 1
		for u := 0; u < g.N(); u++ {
			if !g.HasEdge(v, u) {
				continue
			}
			if out[v] == 1 && out[u] == 1 {
				t.Fatalf("adjacent in-set nodes %d, %d", v, u)
			}
			if out[u] == 1 {
				sawOne = true
			}
		}
		if !sawOne {
			t.Fatalf("node %d has no in-set closed neighbor (not maximal)", v)
		}
	}
}

// TestRunWithRecoveryFuzz: under a sweep of chaos policies, RunWithRecovery
// always returns a verified-valid solution for all three problems, and at
// least some runs were actually damaged and healed (the acceptance
// criterion for the recovery path).
func TestRunWithRecoveryFuzz(t *testing.T) {
	problems := []struct {
		name string
		p    repro.Problem
	}{
		{"mis", repro.ProblemMIS},
		{"matching", repro.ProblemMatching},
		{"vcolor", repro.ProblemVColor},
	}
	for _, prob := range problems {
		t.Run(prob.name, func(t *testing.T) {
			rng := repro.NewRand(int64(1000 + int(prob.p)))
			healed := 0
			for trial := 0; trial < 12; trial++ {
				g := repro.GNP(20+rng.Intn(25), 0.12+rng.Float64()*0.15, rng)
				res, err := repro.RunWithRecovery(g, prob.p, nil, repro.Options{
					MaxRounds: 150,
					Adversary: repro.NewChaos(repro.ChaosPolicy{
						Seed:      rng.Int63(),
						Drop:      rng.Float64() * 0.4,
						Duplicate: rng.Float64() * 0.2,
						Corrupt:   rng.Float64() * 0.15,
						Crash:     rng.Float64() * 0.15,
					}),
				})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !res.Valid && !res.Healed {
					t.Fatalf("trial %d: neither valid nor healed: %+v", trial, res)
				}
				if res.Healed {
					healed++
					if res.Residual == 0 && res.PrimaryErr == nil {
						t.Fatalf("trial %d: healed with no residual and no abort: %+v", trial, res)
					}
					if res.TotalRounds() <= res.PrimaryRounds {
						t.Fatalf("trial %d: recovery reported no rounds: %+v", trial, res)
					}
				}
				if prob.p == repro.ProblemMIS {
					checkMIS(t, g, res.Output)
				}
			}
			if healed == 0 {
				t.Fatal("no trial needed healing; the fuzz is vacuous")
			}
		})
	}
}

// TestRecoverOption: the Run* entry points become self-healing under
// Options.Recover, including when the primary run would abort outright.
func TestRecoverOption(t *testing.T) {
	g := repro.GNP(40, 0.15, repro.NewRand(7))
	opts := repro.Options{
		MaxRounds: 150,
		Recover:   true,
		Adversary: repro.NewChaos(repro.ChaosPolicy{Seed: 11, Drop: 0.4, Crash: 0.1}),
	}
	mis, err := repro.RunMIS(g, nil, repro.MISSimple, opts)
	if err != nil {
		t.Fatalf("RunMIS with Recover: %v", err)
	}
	checkMIS(t, g, mis.InSet)
	if mis.Run.Rounds <= 0 {
		t.Fatalf("no rounds reported: %+v", mis.Run)
	}

	opts.Adversary = repro.NewChaos(repro.ChaosPolicy{Seed: 12, Drop: 0.4, Crash: 0.1})
	match, err := repro.RunMatching(g, nil, repro.MatchingSimple, opts)
	if err != nil {
		t.Fatalf("RunMatching with Recover: %v", err)
	}
	if len(match.Partner) != g.N() {
		t.Fatalf("partner vector length %d", len(match.Partner))
	}

	opts.Adversary = repro.NewChaos(repro.ChaosPolicy{Seed: 13, Drop: 0.4, Crash: 0.1})
	vc, err := repro.RunVColor(g, nil, repro.VColorSimple, opts)
	if err != nil {
		t.Fatalf("RunVColor with Recover: %v", err)
	}
	palette := g.MaxDegree() + 1
	for v, c := range vc.Color {
		if c < 1 || c > palette {
			t.Fatalf("node %d color %d outside palette", v, c)
		}
	}

	// Edge coloring has no recovery path: explicit error, not a silent run.
	if _, err := repro.RunEColor(g, nil, repro.EColorSimple, repro.Options{Recover: true}); err == nil {
		t.Fatal("RunEColor accepted Options.Recover")
	}
}

// TestRecoverPreservesConfigErrors: misconfiguration fails even in
// recovery mode.
func TestRecoverPreservesConfigErrors(t *testing.T) {
	g := repro.Line(3)
	_, err := repro.RunMIS(g, nil, repro.MISSimple, repro.Options{
		Recover: true,
		Crashes: map[int]int{5: 1}, // out of range
	})
	if err == nil {
		t.Fatal("out-of-range crash index accepted in recovery mode")
	}
}

// TestOnRoundStats: the engine's per-round instrumentation reaches library
// users through Options.OnRoundStats, and its per-round message counts sum
// to the run total.
func TestOnRoundStats(t *testing.T) {
	g := repro.GNP(30, 0.2, repro.NewRand(3))
	var records []repro.RoundStats
	res, err := repro.RunMIS(g, repro.PerfectMIS(g), repro.MISSimple, repro.Options{
		OnRoundStats: func(s repro.RoundStats) { records = append(records, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != res.Run.Rounds {
		t.Fatalf("%d stats records for %d rounds", len(records), res.Run.Rounds)
	}
	total := 0
	for i, s := range records {
		if s.Round != i+1 {
			t.Fatalf("record %d has round %d", i, s.Round)
		}
		total += s.Messages
	}
	if total != res.Run.Messages {
		t.Fatalf("per-round messages sum to %d, run total %d", total, res.Run.Messages)
	}
	if records[0].Active != g.N() {
		t.Fatalf("round 1 active = %d, want %d", records[0].Active, g.N())
	}
	if records[0].Bits <= 0 {
		t.Fatalf("round 1 bits = %d, want > 0 (init notifications are sized)", records[0].Bits)
	}
}

// TestRoundDeadlinePublic: a generous deadline does not disturb a healthy
// public-API run.
func TestRoundDeadlinePublic(t *testing.T) {
	g := repro.Line(20)
	res, err := repro.RunMIS(g, repro.PerfectMIS(g), repro.MISSimple, repro.Options{
		RoundDeadline: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Rounds <= 0 {
		t.Fatal("no rounds")
	}
}
