package repro

import (
	"fmt"
	"strings"

	"repro/internal/heal"
	"repro/internal/obs"
	"repro/internal/problem"

	// Each problem package registers its descriptor in init(); import them
	// all here so the registry is complete regardless of which typed entry
	// points the rest of the package happens to reference.
	_ "repro/internal/ecolor"
	_ "repro/internal/matching"
	_ "repro/internal/mis"
	_ "repro/internal/tree"
	_ "repro/internal/vcolor"
)

// This file is the registry-driven generic problem layer: every registered
// (problem, algorithm) pair runs through one code path — prediction
// generation, error summaries, the run itself (with recovery), and
// distributed checking — with no per-problem dispatch. The typed Run*
// entry points in problems.go are thin shims over it, and the CLIs consume
// it directly, so adding a problem or an algorithm is one registration in
// its package, not an edit across six layers.

// AlgorithmInfo describes one registered algorithm variant.
type AlgorithmInfo struct {
	// Problem and Name address the variant in RunProblem.
	Problem, Name string
	// Template is the paper template instantiated: solo, simple,
	// consecutive, interleaved, or parallel.
	Template string
	// Reference describes the stages plugged into the template.
	Reference string
	// Bound is the documented round bound.
	Bound string
	// Seeded reports that the variant consumes Options.Seed.
	Seeded bool
}

// ProblemInfo describes one registered problem.
type ProblemInfo struct {
	// Name addresses the problem in RunProblem and GeneratePreds.
	Name string
	// Doc is the one-line description.
	Doc string
	// OutputLabel labels the output vector in display.
	OutputLabel string
	// CanHeal reports that Options.Recover and RunProblemWithRecovery are
	// supported.
	CanHeal bool
	// Algorithms lists the variants in registration order.
	Algorithms []AlgorithmInfo
}

// Problems enumerates the registry: every problem with its algorithm
// variants, problems sorted by name.
func Problems() []ProblemInfo {
	var out []ProblemInfo
	for _, d := range problem.All() {
		p := ProblemInfo{
			Name:        d.Name,
			Doc:         d.Doc,
			OutputLabel: d.OutputLabel,
			CanHeal:     d.Heal != nil,
		}
		for _, a := range d.Algorithms {
			p.Algorithms = append(p.Algorithms, AlgorithmInfo{
				Problem:   d.Name,
				Name:      a.Name,
				Template:  a.Template,
				Reference: a.Reference,
				Bound:     a.Bound,
				Seeded:    a.Seeded,
			})
		}
		out = append(out, p)
	}
	return out
}

// RegistryTable renders the registry as a fixed-width text table (one row
// per algorithm) — the `dgp-run -list` output and the README's algorithm
// table.
func RegistryTable() string {
	rows := [][]string{{"PROBLEM", "ALGORITHM", "TEMPLATE", "REFERENCE", "ROUND BOUND"}}
	for _, p := range Problems() {
		for _, a := range p.Algorithms {
			rows = append(rows, []string{p.Name, a.Name, a.Template, a.Reference, a.Bound})
		}
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// auxFor builds the problem's default auxiliary instance data for g (the
// rooted forest for the tree problem; nil for the others).
func auxFor(d *problem.Descriptor, g *Graph) (any, error) {
	if d.NewAux == nil {
		return nil, nil
	}
	aux, err := d.NewAux(g)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return aux, nil
}

// GeneratePreds generates the problem's standard test predictions for g: an
// error-free prediction perturbed at flips positions by a generator seeded
// with seed. The concrete type is the problem's prediction type ([]int, or
// []EdgePrediction for edge coloring) — pass the value to RunProblem.
func GeneratePreds(problemName string, g *Graph, flips int, seed int64) (any, error) {
	d, err := problem.Get(problemName)
	if err != nil {
		return nil, err
	}
	aux, err := auxFor(d, g)
	if err != nil {
		return nil, err
	}
	return d.Preds(g, aux, flips, seed), nil
}

// ErrorSummary renders the instance's prediction error measures (e.g.
// "eta1=3 eta2=2 eta_bw=1 components=2").
func ErrorSummary(problemName string, g *Graph, preds any) (string, error) {
	d, err := problem.Get(problemName)
	if err != nil {
		return "", err
	}
	aux, err := auxFor(d, g)
	if err != nil {
		return "", err
	}
	return d.Errors(g, aux, preds)
}

// ProblemResult is the problem-generic outcome of RunProblem.
type ProblemResult struct {
	// Run carries the round/message metrics.
	Run Result
	// Output is the verified per-node output vector for the int-output
	// problems (MIS bit, partner identifier, color); nil for edge coloring.
	Output []int
	// EdgeOutput is the verified per-edge color vector (indexed like
	// Graph.Edges()) for edge coloring; nil for the other problems.
	EdgeOutput []int
	// Recovery is the detailed self-healing report when Options.Recover was
	// set; nil otherwise.
	Recovery *RecoveryResult

	// vectors holds edge coloring's raw per-node color vectors, which the
	// distributed checker consumes.
	vectors [][]int
}

// RunProblem executes one registered (problem, algorithm) pair on g with the
// given predictions (nil for prediction-free algorithms) and verifies the
// output. Options.Recover routes through the problem's healing machinery
// when the descriptor registers one.
func RunProblem(g *Graph, problemName, alg string, preds any, opts Options) (*ProblemResult, error) {
	d, err := problem.Get(problemName)
	if err != nil {
		return nil, err
	}
	aux, err := auxFor(d, g)
	if err != nil {
		return nil, err
	}
	return runGeneric(g, d, alg, aux, preds, opts)
}

// runGeneric is the single generic run path behind RunProblem and every
// typed Run* shim: build the factory, apply the algorithm's engine cap,
// encode the predictions, run (with recovery when requested), and finalize.
func runGeneric(g *Graph, d *problem.Descriptor, alg string, aux any, preds any, opts Options) (*ProblemResult, error) {
	a, err := d.Algorithm(alg)
	if err != nil {
		return nil, err
	}
	factory, err := a.Build(problem.BuildCtx{Seed: opts.Seed, Aux: aux})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	if opts.MaxRounds == 0 && a.MaxRounds != nil {
		opts.MaxRounds = a.MaxRounds(g)
	}
	encoded, err := d.EncodePreds(preds)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	traceRunMeta(d, alg, g, aux, preds, opts)
	if opts.Recover {
		spec, err := healSpecFor(d)
		if err != nil {
			return nil, err
		}
		rr, err := runRecovered(g, factory, encoded, opts, spec)
		if err != nil {
			return nil, err
		}
		return &ProblemResult{Run: rr.asResult(), Output: rr.Output, Recovery: rr}, nil
	}
	raw, err := runAndCollect(g, factory, encoded, opts)
	if err != nil {
		return nil, err
	}
	sol, err := d.Finalize(g, aux, raw.Outputs)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &ProblemResult{
		Run:        baseResult(raw),
		Output:     sol.Node,
		EdgeOutput: sol.Edge,
		vectors:    sol.Vectors,
	}, nil
}

// traceRunMeta labels a traced run with its (problem, algorithm) pair and the
// input prediction-error summary, so a trace file is self-describing: the
// dgp-trace CLI surfaces the meta line as the run header and the η snapshot in
// the trajectory table. No-op without a recorder.
func traceRunMeta(d *problem.Descriptor, alg string, g *Graph, aux any, preds any, opts Options) {
	if opts.Trace == nil {
		return
	}
	opts.Trace.Emit(obs.Event{Type: obs.EvMeta, Name: d.Name + "/" + alg})
	if preds == nil {
		return
	}
	if summary, err := d.Errors(g, aux, preds); err == nil {
		opts.Trace.Emit(obs.Event{Type: obs.EvEta, Name: "input", Text: summary})
	}
}

// healSpecFor resolves a descriptor's registered recovery machinery into the
// engine-level healing spec. The resolution itself lives in heal.SpecFor so
// the registry run helpers and the dynamic session supervisor share it.
func healSpecFor(d *problem.Descriptor) (heal.Spec, error) {
	spec, err := heal.SpecFor(d)
	if err != nil {
		return heal.Spec{}, fmt.Errorf("repro: %w", err)
	}
	return spec, nil
}

// RunProblemWithRecovery executes the problem's Simple Template on g under
// the options' fault knobs and self-heals — the registry-driven form of
// RunWithRecovery, available for every problem whose descriptor registers
// healing machinery (see ProblemInfo.CanHeal).
func RunProblemWithRecovery(g *Graph, problemName string, preds any, opts Options) (*RecoveryResult, error) {
	d, err := problem.Get(problemName)
	if err != nil {
		return nil, err
	}
	spec, err := healSpecFor(d)
	if err != nil {
		return nil, err
	}
	aux, err := auxFor(d, g)
	if err != nil {
		return nil, err
	}
	a, err := d.Algorithm("simple")
	if err != nil {
		return nil, err
	}
	factory, err := a.Build(problem.BuildCtx{Seed: opts.Seed, Aux: aux})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	encoded, err := d.EncodePreds(preds)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	traceRunMeta(d, "simple", g, aux, preds, opts)
	return runRecovered(g, factory, encoded, opts, spec)
}

// CheckSolution runs the problem's constant-round distributed checker
// (Section 1.3) over a RunProblem result: AllAccept iff the output is a
// correct solution.
func CheckSolution(g *Graph, problemName string, res *ProblemResult, opts Options) (*CheckResult, error) {
	d, err := problem.Get(problemName)
	if err != nil {
		return nil, err
	}
	factory, preds, err := d.Checker(problem.Solution{
		Node:    res.Output,
		Vectors: res.vectors,
		Edge:    res.EdgeOutput,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return runChecker(g, factory, preds, opts)
}
