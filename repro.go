// Package repro is a Go library reproducing "Distributed Graph Algorithms
// with Predictions" (Boyar, Ellen, Larsen; brief announcement in PODC 2025):
// deterministic distributed graph algorithms in the synchronous LOCAL model
// whose nodes receive possibly-incorrect predictions of their outputs.
//
// The library provides:
//
//   - a deterministic synchronous round engine (a persistent worker pool
//     with a barrier per phase, or a sequential mode with identical
//     semantics);
//   - the paper's framework: base/initialization/clean-up algorithms,
//     measure-uniform algorithms, and the four templates (Simple,
//     Consecutive, Interleaved, Parallel) as generic combinators;
//   - instantiations for Maximal Independent Set, Maximal Matching,
//     (Δ+1)-Vertex Coloring, and (2Δ−1)-Edge Coloring, plus the rooted-tree
//     MIS specialization;
//   - the error measures η_H, η₁, η₂, η_bw, η_t and prediction generators
//     with controllable error;
//   - a benchmark harness regenerating every quantitative claim in the
//     paper (see EXPERIMENTS.md).
//
// Quick start:
//
//	g := repro.GNP(200, 0.05, rand.New(rand.NewSource(1)))
//	preds := repro.FlipBits(repro.PerfectMIS(g), 10, rng)
//	res, err := repro.RunMIS(g, preds, repro.MISParallelColoring, repro.Options{})
//	fmt.Println(res.Rounds, res.InSet)
package repro

import (
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
	"repro/internal/shard"
	"repro/internal/tree"
)

// Graph is an immutable undirected graph with distinct node identifiers in
// {1, ..., D}; see NewGraphBuilder and the generators.
type Graph = graph.Graph

// GraphBuilder accumulates nodes and edges for a Graph.
type GraphBuilder = graph.Builder

// Rooted is a rooted tree or forest for the Section 9.2 algorithms.
type Rooted = tree.Rooted

// EdgePrediction holds a node's predicted edge colors in sorted-neighbor
// order.
type EdgePrediction = predict.EdgePrediction

// NewGraphBuilder returns a builder for a graph with n nodes, identifiers
// defaulting to 1..n.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Graph generators (see internal/graph for details).
var (
	// Line returns a path of n nodes.
	Line = graph.Line
	// Ring returns a cycle of n nodes.
	Ring = graph.Ring
	// Star returns a star with n-1 leaves.
	Star = graph.Star
	// Clique returns the complete graph on n nodes.
	Clique = graph.Clique
	// CompleteBipartite returns K_{a,b}.
	CompleteBipartite = graph.CompleteBipartite
	// Grid2D returns the rows×cols grid.
	Grid2D = graph.Grid2D
	// WheelFk returns the paper's Figure 1 graph F_k.
	WheelFk = graph.WheelFk
	// GNP returns an Erdős–Rényi random graph.
	GNP = graph.GNP
	// RandomTree returns a uniform random labelled tree.
	RandomTree = graph.RandomTree
	// Caterpillar returns a spine-with-legs tree.
	Caterpillar = graph.Caterpillar
	// Hypercube returns the dim-dimensional hypercube.
	Hypercube = graph.Hypercube
	// DisjointPaths returns count disjoint paths of pathLen nodes each.
	DisjointPaths = graph.DisjointPaths
	// ShuffleIDs reassigns random identifiers from {1, ..., domain}.
	ShuffleIDs = graph.ShuffleIDs
	// FlipEdges toggles k random node pairs (network churn).
	FlipEdges = graph.FlipEdges
	// BarabasiAlbert returns a preferential-attachment random graph.
	BarabasiAlbert = graph.BarabasiAlbert
	// DisjointUnion concatenates graphs with disjoint identifier ranges.
	DisjointUnion = graph.DisjointUnion
	// LineWithIDs returns a path with a chosen identifier sequence.
	LineWithIDs = graph.LineWithIDs
)

// Rooted-tree constructors.
var (
	// DirectedLine returns a rooted path (node 0 is the root).
	DirectedLine = tree.DirectedLine
	// RandomRooted returns a random tree rooted at node 0.
	RandomRooted = tree.RandomRooted
	// RootAt orients an acyclic graph as a rooted forest.
	RootAt = tree.RootAt
)

// Prediction generators.
var (
	// PerfectMIS returns an error-free MIS prediction.
	PerfectMIS = predict.PerfectMIS
	// FlipBits flips k random prediction bits.
	FlipBits = predict.FlipBits
	// FlipProb flips each bit independently with probability p.
	FlipProb = predict.FlipProb
	// Uniform returns n copies of a value.
	Uniform = predict.Uniform
	// GridBW returns the Figure 2 grid pattern.
	GridBW = predict.GridBW
	// WheelCenterOne returns the Figure 1 predictions on WheelFk(k).
	WheelCenterOne = predict.WheelCenterOne
	// Mod3Line returns the Section 9.2 pattern on DirectedLine(3k).
	Mod3Line = predict.Mod3Line
	// MISFromRelatedGraph reuses a solution from a related network.
	MISFromRelatedGraph = predict.MISFromRelatedGraph
	// PerfectMatching returns an error-free matching prediction.
	PerfectMatching = predict.PerfectMatching
	// PerturbMatching rewires k nodes' matching predictions.
	PerturbMatching = predict.PerturbMatching
	// PerfectVColor returns an error-free (Δ+1)-coloring prediction.
	PerfectVColor = predict.PerfectVColor
	// PerturbVColor re-randomizes k nodes' color predictions.
	PerturbVColor = predict.PerturbVColor
	// PerfectEColor returns an error-free (2Δ−1)-edge-coloring prediction.
	PerfectEColor = predict.PerfectEColor
	// PerturbEColor re-randomizes k edges' color predictions.
	PerturbEColor = predict.PerturbEColor
)

// Unmatched is the maximal-matching output for an unmatched node (⊥).
const Unmatched = predict.Unmatched

// Options configures a run.
type Options struct {
	// Parallel selects the worker-pool engine (identical results).
	Parallel bool
	// Shards, when positive, selects the sharded engine: the graph is split
	// into Shards partitions, each run by an independent shard engine, with
	// boundary-edge message batches exchanged at the round barrier. Results,
	// error surfaces, and traces are identical for every value (the
	// engine-level determinism contract); Shards is a throughput knob, not a
	// semantic one. Composes with Parallel (per-shard worker pools).
	Shards int
	// Partition, when non-nil, fixes the node→shard assignment (see
	// GreedyPartition); nil with Shards > 0 selects contiguous index ranges.
	Partition *ShardPartition
	// MaxRounds caps the execution (0 = 8n+64).
	MaxRounds int
	// Seed drives the seeded algorithms (Luby, the decomposition
	// reference); ignored by deterministic ones.
	Seed int64
	// Crashes maps node index to crash round, for fault-injection runs.
	Crashes map[int]int
	// CongestBits, when positive, enforces the CONGEST model: every message
	// must be size-accounted and at most this many bits. Algorithms built on
	// LOCAL-size floods (collect, decomposition) will abort under it.
	CongestBits int
	// OnRound, when non-nil, is called at the end of every round with the
	// round number and the count of still-active nodes — a lightweight trace
	// hook for progress visualization.
	OnRound func(round, active int)
	// OnRoundStats, when non-nil, receives the engine's per-round
	// instrumentation record (wall time, deliveries, payload bits, active
	// nodes). Purely observational.
	OnRoundStats func(RoundStats)
	// Adversary, when non-nil, injects faults into message routing and may
	// crash nodes; see NewChaos for the seeded policy implementation. An
	// adversary value is consumed by the run — pass a fresh one per call.
	Adversary Adversary
	// RoundDeadline, when positive, aborts the run with a diagnostic error
	// if any send or receive phase exceeds it (a watchdog against wedged
	// machines).
	RoundDeadline time.Duration
	// Recover makes the Run* entry points self-healing: instead of failing
	// on an invalid or aborted faulted run, they carve the damaged outputs
	// into an extendable partial solution and re-run the problem's clean-up
	// machinery to extend it (see RunWithRecovery for the detailed report).
	// Supported for MIS (including trees), matching, and vertex coloring.
	Recover bool
	// Trace, when non-nil, records the run's typed event stream: rounds,
	// message batches, faults, template-stage spans, heal phases, and η
	// snapshots. The stream is deterministic across engine modes (only
	// wall-clock durations differ); export it with the obs helpers or the
	// dgp-trace CLI. Tracing disabled (nil) costs a pointer check.
	Trace *TraceRecorder
	// Telemetry, when non-nil, records per-phase round wall-time histograms
	// (dgp_round_seconds{phase,shards}) into its metrics registry; sample
	// process resource gauges with Telemetry.SampleRuntime and export with
	// MetricsRegistry snapshots or the ServeDebug HTTP handler. Purely
	// observational; nil costs a pointer check.
	Telemetry *Telemetry
}

// Trace types re-exported for library users.
type (
	// TraceRecorder is the ring-buffered trace event recorder.
	TraceRecorder = obs.Recorder
	// TraceEvent is one typed trace record.
	TraceEvent = obs.Event
	// Telemetry is the runtime resource telemetry recorder: per-phase round
	// wall-time histograms plus runtime/metrics-sampled heap, goroutine,
	// and GC gauges, all written into a MetricsRegistry.
	Telemetry = obs.Telemetry
	// MetricsRegistry is the counters/gauges/histograms registry behind
	// Telemetry and the trace aggregation; snapshots export Prometheus text
	// or JSON.
	MetricsRegistry = obs.Registry
)

// NewTraceRecorder returns a recorder holding at most capacity events
// (capacity <= 0 selects the default, 65536). Attach it via Options.Trace.
func NewTraceRecorder(capacity int) *TraceRecorder { return obs.NewRecorder(capacity) }

// NewTelemetry returns a telemetry recorder writing into reg (a fresh
// registry when reg is nil). Attach it via Options.Telemetry or
// SessionOptions.Telemetry.
func NewTelemetry(reg *MetricsRegistry) *Telemetry { return obs.NewTelemetry(reg) }

// ServeDebug returns an http.Handler bundling /metrics (Prometheus text of
// t's registry with runtime gauges re-sampled per scrape), /healthz, and
// the /debug/pprof profiling endpoints — the operational debug surface for
// long-running processes embedding this library.
var ServeDebug = obs.ServeDebug

// Engine and chaos types re-exported for library users.
type (
	// RoundStats is the engine's per-round instrumentation record.
	RoundStats = runtime.RoundStats
	// Adversary is the engine's fault-injection hook.
	Adversary = runtime.Adversary
	// Fate is an adversary's verdict on one in-flight message.
	Fate = runtime.Fate
	// ChaosPolicy is a seeded fault policy: per-message drop, duplication,
	// and corruption probabilities, per-link failure and per-node crash
	// probabilities, and the rounds by which they strike.
	ChaosPolicy = fault.Policy
	// ChaosStats counts the faults a chaos adversary actually injected.
	ChaosStats = fault.Stats
	// Chaos is the seeded adversary implementing a ChaosPolicy. Single-run.
	Chaos = fault.Chaos
	// ShardPartition is a node→shard assignment for the sharded engine.
	ShardPartition = shard.Partition
)

// Shard partitioners re-exported for library users.
var (
	// ContiguousPartition splits n nodes into s contiguous index ranges —
	// the sharded engine's default strategy.
	ContiguousPartition = shard.Contiguous
	// GreedyPartition is the seeded greedy edge-cut heuristic over a graph's
	// CSR arrays (see Graph.CSR).
	GreedyPartition = shard.GreedyEdgeCut
)

// NewChaos returns a fresh seeded adversary for one run: the same policy
// reproduces the same fault schedule exactly, in both engine modes.
func NewChaos(p ChaosPolicy) *Chaos { return fault.New(p) }

// Engine error sentinels, for errors.Is on failed runs.
var (
	// ErrNoTermination: the algorithm exceeded MaxRounds.
	ErrNoTermination = runtime.ErrNoTermination
	// ErrCongestViolation: a message broke the CongestBits budget.
	ErrCongestViolation = runtime.ErrCongestViolation
	// ErrMachinePanic: a node's Send or Receive panicked; the panic was
	// contained and surfaced as this per-node error.
	ErrMachinePanic = runtime.ErrMachinePanic
	// ErrRoundDeadline: a phase exceeded Options.RoundDeadline.
	ErrRoundDeadline = runtime.ErrRoundDeadline
)

// Result carries the run metrics shared by all problems.
type Result struct {
	// Rounds is the round in which the last node terminated.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int
	// MaxMsgBits is the largest message in bits. It is -1 when no sized
	// payload was observed: either a payload was not size-accounted
	// (LOCAL-only) or the run delivered no messages at all.
	MaxMsgBits int
	// TerminatedAt is the termination round per node index.
	TerminatedAt []int
}

func buildConfig(g *Graph, factory runtime.Factory, preds []any, opts Options) runtime.Config {
	var observer func(round int, outputs []any, active []bool)
	if opts.OnRound != nil {
		observer = func(round int, outputs []any, active []bool) {
			count := 0
			for _, a := range active {
				if a {
					count++
				}
			}
			opts.OnRound(round, count)
		}
	}
	return runtime.Config{
		Graph:          g,
		Factory:        factory,
		Predictions:    preds,
		Parallel:       opts.Parallel,
		Shards:         opts.Shards,
		Partition:      opts.Partition,
		MaxRounds:      opts.MaxRounds,
		Crashes:        opts.Crashes,
		MaxMessageBits: opts.CongestBits,
		Observer:       observer,
		Stats:          opts.OnRoundStats,
		Adversary:      opts.Adversary,
		RoundDeadline:  opts.RoundDeadline,
		Trace:          opts.Trace,
		Telemetry:      opts.Telemetry,
	}
}

func runAndCollect(g *Graph, factory runtime.Factory, preds []any, opts Options) (*runtime.Result, error) {
	return runtime.Run(buildConfig(g, factory, preds, opts))
}

func baseResult(r *runtime.Result) Result {
	return Result{
		Rounds:       r.Rounds,
		Messages:     r.Messages,
		MaxMsgBits:   r.MaxMsgBits,
		TerminatedAt: r.TerminatedAt,
	}
}

func intPreds(preds []int) []any {
	if preds == nil {
		return nil
	}
	out := make([]any, len(preds))
	for i, p := range preds {
		out[i] = p
	}
	return out
}

// NewRand returns a deterministic PRNG for the generators.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
