package repro_test

import (
	"testing"

	"repro"
)

// These tests exercise the public facade end to end: every exported runner,
// on every algorithm constant, with verified outputs.

func TestPublicMISAlgorithms(t *testing.T) {
	g := repro.GNP(60, 0.08, repro.NewRand(4))
	preds := repro.FlipBits(repro.PerfectMIS(g), 6, repro.NewRand(5))
	algs := []repro.MISAlgorithm{
		repro.MISGreedy, repro.MISSimple, repro.MISSimpleBase, repro.MISSimpleBW,
		repro.MISSimpleLuby, repro.MISSimpleCollect, repro.MISConsecutiveCollect,
		repro.MISConsecutiveDecomp, repro.MISInterleavedDecomp,
		repro.MISParallelColoring, repro.MISLubySolo, repro.MISSimpleUniform,
	}
	for _, alg := range algs {
		res, err := repro.RunMIS(g, preds, alg, repro.Options{Seed: 6})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if res.Run.Rounds <= 0 {
			t.Errorf("alg %d: nonpositive rounds", alg)
		}
		if len(res.InSet) != g.N() {
			t.Errorf("alg %d: %d outputs", alg, len(res.InSet))
		}
	}
	if _, err := repro.RunMIS(g, preds, repro.MISAlgorithm(99), repro.Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, lambda := range []float64{0, 0.5, 1} {
		if _, err := repro.RunMISTradeoff(g, preds, lambda, repro.Options{MaxRounds: 64 * g.N()}); err != nil {
			t.Fatalf("tradeoff lambda=%v: %v", lambda, err)
		}
	}
}

func TestPublicMatchingVColorEColor(t *testing.T) {
	g := repro.Grid2D(7, 7)
	mPreds := repro.PerturbMatching(g, repro.PerfectMatching(g), 5, repro.NewRand(7))
	for _, alg := range []repro.MatchingAlgorithm{
		repro.MatchingGreedy, repro.MatchingSimple,
		repro.MatchingSimpleCollect, repro.MatchingConsecutive,
		repro.MatchingParallel,
	} {
		if _, err := repro.RunMatching(g, mPreds, alg, repro.Options{}); err != nil {
			t.Fatalf("matching alg %d: %v", alg, err)
		}
	}
	vPreds := repro.PerturbVColor(g, repro.PerfectVColor(g), 5, repro.NewRand(8))
	for _, alg := range []repro.VColorAlgorithm{
		repro.VColorGreedy, repro.VColorSimple, repro.VColorSimpleLinial,
		repro.VColorConsecutive, repro.VColorLinial,
		repro.VColorInterleaved, repro.VColorParallel,
	} {
		if _, err := repro.RunVColor(g, vPreds, alg, repro.Options{}); err != nil {
			t.Fatalf("vcolor alg %d: %v", alg, err)
		}
	}
	ePreds := repro.PerturbEColor(g, repro.PerfectEColor(g), 5, repro.NewRand(9))
	for _, alg := range []repro.EColorAlgorithm{
		repro.EColorGreedy, repro.EColorSimple,
		repro.EColorSimpleCollect, repro.EColorConsecutive,
		repro.EColorParallel,
	} {
		if _, err := repro.RunEColor(g, ePreds, alg, repro.Options{}); err != nil {
			t.Fatalf("ecolor alg %d: %v", alg, err)
		}
	}
}

func TestPublicTreeMIS(t *testing.T) {
	r := repro.RandomRooted(50, repro.NewRand(10))
	preds := repro.FlipBits(repro.PerfectMIS(r.G), 5, repro.NewRand(11))
	for _, alg := range []repro.TreeMISAlgorithm{
		repro.TreeRootsLeaves, repro.TreeSimple, repro.TreeParallel,
		repro.TreeConsecutive,
	} {
		res, err := repro.RunTreeMIS(r, preds, alg, repro.Options{})
		if err != nil {
			t.Fatalf("tree alg %d: %v", alg, err)
		}
		if res.Run.Rounds <= 0 {
			t.Errorf("tree alg %d: nonpositive rounds", alg)
		}
	}
	if got := repro.TreeEtaT(r, preds); got < 0 {
		t.Errorf("TreeEtaT = %d", got)
	}
}

func TestPublicErrorMeasures(t *testing.T) {
	g := repro.Ring(24)
	preds := repro.FlipBits(repro.PerfectMIS(g), 4, repro.NewRand(12))
	errs, err := repro.MISErrorReport(g, preds)
	if err != nil {
		t.Fatal(err)
	}
	if errs.Eta2 > errs.Eta1 || errs.EtaBW > errs.Eta1 {
		t.Errorf("measure ordering violated: %+v", errs)
	}
	if errs.EtaH < 0 {
		t.Errorf("etaH should be computable on n=24: %+v", errs)
	}
	perfect := repro.PerfectMIS(g)
	clean, err := repro.MISErrorReport(g, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Eta1 != 0 || clean.Eta2 != 0 || clean.EtaBW != 0 || clean.EtaH != 0 {
		t.Errorf("perfect predictions should have zero error: %+v", clean)
	}
	if a, err := repro.Alpha(g); err != nil || a != 12 {
		t.Errorf("alpha(C24) = %d, %v; want 12", a, err)
	}
	if tau, err := repro.Tau(g); err != nil || tau != 12 {
		t.Errorf("tau(C24) = %d, %v; want 12", tau, err)
	}
}

func TestCrashInjectionSurfacesAsError(t *testing.T) {
	// A crashed node never outputs, so the full-solution verifier must
	// reject the run; the fault-tolerance guarantees themselves (survivors
	// stay consistent) are tested at the runtime and vcolor layers.
	g := repro.Ring(12)
	if _, err := repro.RunMIS(g, nil, repro.MISGreedy, repro.Options{
		Crashes: map[int]int{0: 1},
	}); err == nil {
		t.Error("crashed node should make full-solution verification fail")
	}
}
