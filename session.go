package repro

import (
	"time"

	"repro/internal/dynamic"
	"repro/internal/runtime/fault"
)

// Dynamic-session types re-exported for library users; see internal/dynamic
// for the detailed semantics.
type (
	// EdgeUpdate is one edge mutation (insert or delete) by node index.
	EdgeUpdate = dynamic.Update
	// UpdateBatch is one atomically-applied group of edge updates,
	// deduplicated by sequence number.
	UpdateBatch = dynamic.Batch
	// SessionStep describes how one delivered batch was absorbed: outcome,
	// damage, residual, degradation-ladder attempts, and recovery cost.
	SessionStep = dynamic.StepReport
	// SessionStats accumulates a session's lifetime counters.
	SessionStats = dynamic.Stats
	// StreamPolicy is seeded chaos on an update-batch stream: drop,
	// duplicate, and reorder probabilities plus per-step engine chaos.
	StreamPolicy = fault.StreamPolicy
	// StreamStats counts the perturbations a stream plan contained.
	StreamStats = fault.StreamStats
)

// Edge-update kinds.
const (
	// EdgeInsert adds an edge (a no-op if present).
	EdgeInsert = dynamic.Insert
	// EdgeDelete removes an edge (a no-op if absent).
	EdgeDelete = dynamic.Delete
)

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = dynamic.ErrClosed

// SessionOptions configures a dynamic session.
type SessionOptions struct {
	// Parallel selects the worker-pool engine for every run in the session.
	Parallel bool
	// MaxRetries bounds the degradation ladder (0 = default 2: one widening
	// rung, then a from-scratch re-run).
	MaxRetries int
	// StepMaxRounds caps each incremental attempt's rounds (0 = engine
	// default); the final from-scratch rung always runs uncapped.
	StepMaxRounds int
	// StepDeadline bounds each incremental attempt's per-round wall time.
	StepDeadline time.Duration
	// Adversary, when non-nil, supplies the fault adversary for incremental
	// attempt `attempt` of step `step`; return nil for a fault-free attempt.
	Adversary func(step, attempt int) Adversary
	// Trace, when non-nil, records session lifecycle, update, retry, and
	// engine events.
	Trace *TraceRecorder
	// Telemetry, when non-nil, records per-phase round wall-time histograms
	// for every engine run the session executes; see Options.Telemetry.
	Telemetry *Telemetry
}

// Session owns a mutable graph and a continuously valid solution on it.
// Batched edge updates applied between runs are absorbed by self-healing:
// the previous output is re-encoded as the next run's prediction, so
// recovery rounds scale with the damage of the batch, not with the graph.
// Not safe for concurrent use.
type Session struct {
	s *dynamic.Session
}

// NewSession opens a dynamic session for a registered problem on g, running
// the problem's Simple Template prediction-free for the initial valid
// output. Supported for every problem with healing machinery
// (ProblemInfo.CanHeal): MIS, matching, vertex coloring, and tree MIS.
func NewSession(g *Graph, problemName string, opts SessionOptions) (*Session, error) {
	s, err := dynamic.Open(g, dynamic.Config{
		Problem:       problemName,
		Parallel:      opts.Parallel,
		MaxRetries:    opts.MaxRetries,
		StepMaxRounds: opts.StepMaxRounds,
		StepDeadline:  opts.StepDeadline,
		Adversary:     opts.Adversary,
		Trace:         opts.Trace,
		Telemetry:     opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Apply delivers one batch: deduplicate, patch the graph, heal the output.
// Malformed batches are rejected and skipped (see SessionStep.Outcome); only
// a failed from-scratch rung or a misconfiguration is an error.
func (s *Session) Apply(b UpdateBatch) (SessionStep, error) { return s.s.Apply(b) }

// ApplyStream delivers batches under the stream-chaos policy's seeded plan
// (nil delivers the stream verbatim). Reports are in delivery order.
func (s *Session) ApplyStream(batches []UpdateBatch, sp *StreamPolicy) ([]SessionStep, StreamStats, error) {
	return s.s.ApplyStream(batches, sp)
}

// Graph returns the session's current (immutable) graph.
func (s *Session) Graph() *Graph { return s.s.Graph() }

// Output returns a copy of the current valid output vector.
func (s *Session) Output() []int { return s.s.Output() }

// Stats returns the session's lifetime counters so far.
func (s *Session) Stats() SessionStats { return s.s.Stats() }

// Close ends the session and returns the final counters.
func (s *Session) Close() SessionStats { return s.s.Close() }

// SessionReport is the outcome of RunSession.
type SessionReport struct {
	// Steps are the per-delivery reports, in delivery order.
	Steps []SessionStep
	// Stream counts the chaos perturbations of the delivery plan.
	Stream StreamStats
	// Stats are the session's lifetime counters.
	Stats SessionStats
	// Output is the final valid output vector on FinalGraph.
	Output []int
	// FinalGraph is the graph after every applied batch.
	FinalGraph *Graph
}

// RunSession opens a session, streams the batches through it (under the
// optional stream-chaos policy), and closes it — the one-shot form of the
// Session API.
func RunSession(g *Graph, problemName string, batches []UpdateBatch, sp *StreamPolicy, opts SessionOptions) (*SessionReport, error) {
	s, err := NewSession(g, problemName, opts)
	if err != nil {
		return nil, err
	}
	steps, stream, err := s.ApplyStream(batches, sp)
	if err != nil {
		return nil, err
	}
	return &SessionReport{
		Steps:      steps,
		Stream:     stream,
		Stats:      s.Close(),
		Output:     s.Output(),
		FinalGraph: s.Graph(),
	}, nil
}
