package repro_test

import (
	"testing"

	"repro"
)

func TestSessionPublicAPI(t *testing.T) {
	rng := repro.NewRand(1)
	g := repro.GNP(50, 0.1, rng)
	s, err := repro.NewSession(g, "mis", repro.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := s.Apply(repro.UpdateBatch{Seq: 1, Updates: []repro.EdgeUpdate{
		{Op: repro.EdgeInsert, U: 0, V: 1},
		{Op: repro.EdgeDelete, U: 2, V: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if step.Outcome != "applied" {
		t.Fatalf("step outcome %q", step.Outcome)
	}
	out := s.Output()
	if len(out) != 50 {
		t.Fatalf("output length %d", len(out))
	}
	if res, err := repro.CheckMIS(s.Graph(), out, repro.Options{}); err != nil || !res.AllAccept {
		t.Fatalf("distributed checker rejects the session output: %v %+v", err, res)
	}
	st := s.Close()
	if st.Applied != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := s.Apply(repro.UpdateBatch{Seq: 2}); err != repro.ErrSessionClosed {
		t.Fatalf("Apply after Close = %v", err)
	}
}

func TestRunSessionOneShot(t *testing.T) {
	rng := repro.NewRand(2)
	g := repro.GNP(40, 0.1, rng)
	batches := []repro.UpdateBatch{
		{Seq: 0, Updates: []repro.EdgeUpdate{{Op: repro.EdgeInsert, U: 0, V: 5}}},
		{Seq: 1, Updates: []repro.EdgeUpdate{{Op: repro.EdgeDelete, U: 0, V: 5}}},
		{Seq: 2, Updates: []repro.EdgeUpdate{{Op: repro.EdgeInsert, U: 3, V: 7}}},
	}
	rep, err := repro.RunSession(g, "vcolor", batches, &repro.StreamPolicy{
		Seed: 4, Drop: 0.2, Duplicate: 0.3, Reorder: 0.3,
		StepFault: 0.5, Step: repro.ChaosPolicy{Drop: 0.3},
	}, repro.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stream.Batches != 3 {
		t.Fatalf("stream stats %+v", rep.Stream)
	}
	if len(rep.Output) != 40 || rep.FinalGraph == nil {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if res, err := repro.CheckVColor(rep.FinalGraph, rep.Output, repro.Options{}); err != nil || !res.AllAccept {
		t.Fatalf("checker rejects one-shot session output: %v", err)
	}
}
