package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/obs"
)

// FuzzShardParity is the native-fuzz form of the sharded-engine determinism
// contract: for any registered problem, algorithm variant, topology, chaos
// policy, and partition strategy the fuzzer derives from its inputs, the
// sequential engine and the sharded engine at S in {1, 2, 4, 8} must produce
// byte-identical outputs, ledgers, chaos fault sequences, error surfaces,
// and canonical traces (after dropping the S-dependent shard-exchange
// ledger events, which exist only when S > 1).
//
// shape packs the problem/algorithm/topology selectors byte by byte; rates
// packs the five fault probabilities exactly like FuzzAdversaryParity. The
// committed corpus (testdata/fuzz/FuzzShardParity) covers every registered
// problem, both partition strategies, a chaos mix, and a corrupt-heavy
// error-surface vector.
func FuzzShardParity(f *testing.F) {
	// One vector per registered problem (shape low bits = problem index),
	// clean runs, contiguous partitions.
	f.Add(int64(11), uint64(0|1<<4|40<<8), uint64(0), false) // ecolor
	f.Add(int64(12), uint64(1|0<<4|33<<8), uint64(0), false) // matching
	f.Add(int64(13), uint64(2|0<<4|48<<8), uint64(0), false) // mis
	f.Add(int64(14), uint64(3|1<<4|30<<8), uint64(0), false) // tree
	f.Add(int64(15), uint64(4|2<<4|36<<8), uint64(0), false) // vcolor
	// Chaos mix on mis/gnp with a greedy partition.
	f.Add(int64(7), uint64(2|3<<4|45<<8|2<<16|2<<20), uint64(0x20_18_18_20_28), true)
	// Error surface: corrupt-heavy chaos drives template machines to reject
	// garbage payloads; all engines must fail with the identical error.
	f.Add(int64(3), uint64(2|0<<4|28<<8|1<<20), uint64(0x00_00_00_a0_00), false)
	// Prediction errors plus drops on matching.
	f.Add(int64(21), uint64(1|2<<4|50<<8|4<<16|1<<20), uint64(0x00_00_00_00_30), true)
	f.Fuzz(func(t *testing.T, seed int64, shape, rates uint64, greedy bool) {
		problems := repro.Problems()
		p := problems[int(shape%uint64(len(problems)))]
		a := p.Algorithms[int((shape>>4)%uint64(len(p.Algorithms)))]
		n := 8 + int((shape>>8)%57) // 8..64 nodes
		flips := int((shape >> 16) % 6)
		gsel := int((shape >> 20) % 3)
		rng := repro.NewRand(seed)
		var g *repro.Graph
		if p.Name == "tree" {
			g = []*repro.Graph{repro.Line(n), repro.Star(n), repro.RandomTree(n, rng)}[gsel]
		} else {
			g = []*repro.Graph{repro.Ring(n), repro.Grid2D(4, (n+3)/4), repro.GNP(n, 0.15, rng)}[gsel]
		}
		preds, err := repro.GeneratePreds(p.Name, g, flips, seed)
		if err != nil {
			t.Fatal(err)
		}
		frac := func(b int) float64 { return float64((rates>>b)&0xff) / 255 }
		policy := repro.ChaosPolicy{
			Seed:      seed,
			Drop:      frac(0) * 0.4,
			Duplicate: frac(8) * 0.4,
			Corrupt:   frac(16) * 0.4,
			LinkFail:  frac(24) * 0.25,
			Crash:     frac(32) * 0.25,
		}
		chaotic := rates != 0
		run := func(shards int) (*repro.ProblemResult, error, repro.ChaosStats, []repro.TraceEvent) {
			tr := repro.NewTraceRecorder(1 << 14)
			opts := repro.Options{Seed: 5, MaxRounds: 150, Trace: tr, Shards: shards}
			if shards > 1 && greedy {
				off, adj := g.CSR()
				opts.Partition = repro.GreedyPartition(g.N(), off, adj, shards, seed)
			}
			var chaos *repro.Chaos
			if chaotic {
				chaos = repro.NewChaos(policy) // single-run: fresh per engine mode
				opts.Adversary = chaos
			}
			res, err := repro.RunProblem(g, p.Name, a.Name, preds, opts)
			var stats repro.ChaosStats
			if chaos != nil {
				stats = chaos.Stats()
			}
			return res, err, stats, tr.Events()
		}
		base, baseErr, baseStats, baseTrace := run(0)
		baseTrace = dropShardEvents(baseTrace)
		for _, s := range []int{1, 2, 4, 8} {
			res, err, stats, trace := run(s)
			if stats != baseStats {
				t.Fatalf("S=%d: fault sequences differ: %+v vs %+v", s, stats, baseStats)
			}
			if (err == nil) != (baseErr == nil) {
				t.Fatalf("S=%d: error surfaces differ: %v vs %v", s, err, baseErr)
			}
			if err != nil {
				if err.Error() != baseErr.Error() {
					t.Fatalf("S=%d: errors differ:\n  seq:   %v\n  shard: %v", s, baseErr, err)
				}
				continue
			}
			if fmt.Sprint(res.Output, res.EdgeOutput) != fmt.Sprint(base.Output, base.EdgeOutput) {
				t.Fatalf("S=%d: outputs differ:\nseq:   %v %v\nshard: %v %v",
					s, base.Output, base.EdgeOutput, res.Output, res.EdgeOutput)
			}
			if res.Run.Rounds != base.Run.Rounds || res.Run.Messages != base.Run.Messages ||
				res.Run.MaxMsgBits != base.Run.MaxMsgBits {
				t.Fatalf("S=%d: run ledgers differ: %+v vs %+v", s, res.Run, base.Run)
			}
			if i, desc, ok := obs.Diff(obs.Canonical(baseTrace), obs.Canonical(dropShardEvents(trace))); !ok {
				t.Fatalf("S=%d: traces diverge at event %d: %s", s, i, desc)
			}
		}
	})
}

// dropShardEvents filters the shard-exchange ledger events, which legally
// vary with the shard count, from a trace before cross-S comparison.
func dropShardEvents(events []repro.TraceEvent) []repro.TraceEvent {
	out := events[:0:0]
	for _, ev := range events {
		if ev.Type != obs.EvShardExchange {
			out = append(out, ev)
		}
	}
	return out
}
