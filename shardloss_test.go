package repro_test

import (
	"testing"

	"repro"
)

// Shard-loss chaos: a whole shard of the partition goes dark at a scheduled
// round, and RunWithRecovery heals exactly the lost region. The key locality
// property pinned here is that the recovery cost tracks the shard boundary,
// not the graph: growing n at a fixed shard size leaves the residual and the
// recovery rounds unchanged.

// TestShardLossRecoveryTracksBoundary loses one 80-node shard of a ring at
// round 2 and heals under ProblemMIS with clean-run predictions. The ring
// grows 4x (240 -> 960) while the shard size stays 80; residual and recovery
// rounds must stay flat.
func TestShardLossRecoveryTracksBoundary(t *testing.T) {
	const shardSize = 80
	type outcome struct {
		n, residual, recoveryRounds int
	}
	var got []outcome
	for _, tc := range []struct{ n, s int }{{240, 3}, {480, 6}, {960, 12}} {
		g := repro.Ring(tc.n)
		// Predictions from a clean run: alive nodes settle in O(1) rounds, so
		// the carve isolates the crashed shard instead of the whole graph.
		clean, err := repro.RunMIS(g, nil, repro.MISSimple, repro.Options{})
		if err != nil {
			t.Fatalf("clean run n=%d: %v", tc.n, err)
		}
		part := repro.ContiguousPartition(tc.n, tc.s)
		chaos := repro.NewChaos(repro.ChaosPolicy{
			Partition:  part,
			LoseShards: map[int]int{1: 2}, // shard 1 = nodes 80..159 in every size
		})
		res, err := repro.RunWithRecovery(g, repro.ProblemMIS, clean.InSet, repro.Options{
			MaxRounds: 300,
			Shards:    tc.s,
			Partition: part,
			Adversary: chaos,
		})
		if err != nil {
			t.Fatalf("n=%d: RunWithRecovery: %v", tc.n, err)
		}
		if stats := chaos.Stats(); stats.LostShards != 1 || stats.Crashed != shardSize {
			t.Fatalf("n=%d: chaos stats %+v, want LostShards=1 Crashed=%d", tc.n, stats, shardSize)
		}
		if !res.Healed {
			t.Fatalf("n=%d: recovery did not heal (valid=%v, primaryErr=%v)", tc.n, res.Valid, res.PrimaryErr)
		}
		checkMIS(t, g, res.Output)
		if res.PrimaryRounds > 10 {
			t.Errorf("n=%d: primary took %d rounds; predictions should settle alive nodes fast", tc.n, res.PrimaryRounds)
		}
		// The carve may keep or demote a handful of boundary nodes, but the
		// residual must bracket the lost shard, not the graph.
		if res.Residual < shardSize-10 || res.Residual > shardSize+10 {
			t.Errorf("n=%d: residual %d does not track the shard size %d", tc.n, res.Residual, shardSize)
		}
		got = append(got, outcome{n: tc.n, residual: res.Residual, recoveryRounds: res.RecoveryRounds})
	}
	// Flatness: the same shard was lost in every run, so the recovery cost
	// must not grow with n.
	base := got[0]
	for _, o := range got[1:] {
		if o.residual != base.residual {
			t.Errorf("residual varies with n: n=%d got %d, n=%d got %d", base.n, base.residual, o.n, o.residual)
		}
		if diff := o.recoveryRounds - base.recoveryRounds; diff < -4 || diff > 4 {
			t.Errorf("recovery rounds scale with n: n=%d took %d, n=%d took %d",
				base.n, base.recoveryRounds, o.n, o.recoveryRounds)
		}
	}
	// And the cost is on the order of the shard, far below the largest graph.
	if max := got[len(got)-1]; max.recoveryRounds > 2*shardSize {
		t.Errorf("recovery rounds %d exceed 2x shard size %d", max.recoveryRounds, shardSize)
	}
}

// TestShardLossSeededRecovery exercises the seeded ShardLoss path end to end:
// random shards go dark, chaos stats count them, and healing still produces a
// valid MIS.
func TestShardLossSeededRecovery(t *testing.T) {
	g := repro.Ring(200)
	part := repro.ContiguousPartition(200, 10)
	clean, err := repro.RunMIS(g, nil, repro.MISSimple, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chaos := repro.NewChaos(repro.ChaosPolicy{
		Seed:        17,
		Partition:   part,
		ShardLoss:   0.3,
		ShardLossBy: 4,
	})
	res, err := repro.RunWithRecovery(g, repro.ProblemMIS, clean.InSet, repro.Options{
		MaxRounds: 300,
		Shards:    10,
		Partition: part,
		Adversary: chaos,
	})
	if err != nil {
		t.Fatalf("RunWithRecovery: %v", err)
	}
	stats := chaos.Stats()
	if stats.LostShards == 0 {
		t.Fatal("seed 17 lost no shards; pick another seed for a live test")
	}
	if stats.Crashed != stats.LostShards*20 {
		t.Fatalf("crashed %d nodes for %d lost 20-node shards", stats.Crashed, stats.LostShards)
	}
	if res.Valid {
		t.Fatal("run with lost shards verified without healing")
	}
	if !res.Healed {
		t.Fatalf("recovery did not heal (primaryErr=%v)", res.PrimaryErr)
	}
	checkMIS(t, g, res.Output)
}
