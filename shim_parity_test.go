package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// TestShimParity: the typed Run* entry points are thin shims over the
// registry's generic path — on fixed seeds, both must produce identical
// metrics and output vectors for every algorithm enum.

func parityOpts() repro.Options { return repro.Options{Seed: 7} }

func assertSame(t *testing.T, old, gen any) {
	t.Helper()
	o, g := fmt.Sprintf("%+v", old), fmt.Sprintf("%+v", gen)
	if o != g {
		t.Errorf("shim and generic path disagree:\nshim:    %s\ngeneric: %s", o, g)
	}
}

func TestShimParityMIS(t *testing.T) {
	g := repro.GNP(40, 0.12, repro.NewRand(4242))
	preds := repro.FlipBits(repro.PerfectMIS(g), 5, repro.NewRand(3))
	algs := map[string]repro.MISAlgorithm{
		"greedy":      repro.MISGreedy,
		"simple":      repro.MISSimple,
		"base":        repro.MISSimpleBase,
		"bw":          repro.MISSimpleBW,
		"luby":        repro.MISSimpleLuby,
		"collect":     repro.MISSimpleCollect,
		"consecutive": repro.MISConsecutiveCollect,
		"decomp":      repro.MISConsecutiveDecomp,
		"interleaved": repro.MISInterleavedDecomp,
		"parallel":    repro.MISParallelColoring,
		"lubysolo":    repro.MISLubySolo,
		"uniform":     repro.MISSimpleUniform,
	}
	for name, alg := range algs {
		name, alg := name, alg
		t.Run(name, func(t *testing.T) {
			old, err := repro.RunMIS(g, preds, alg, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := repro.RunProblem(g, "mis", name, preds, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, old.Run, gen.Run)
			assertSame(t, old.InSet, gen.Output)
		})
	}
}

func TestShimParityTree(t *testing.T) {
	g := repro.Line(37)
	r := repro.RootAt(g, 0)
	preds := repro.FlipBits(repro.PerfectMIS(g), 4, repro.NewRand(3))
	algs := map[string]repro.TreeMISAlgorithm{
		"greedy":      repro.TreeRootsLeaves,
		"simple":      repro.TreeSimple,
		"parallel":    repro.TreeParallel,
		"consecutive": repro.TreeConsecutive,
	}
	for name, alg := range algs {
		name, alg := name, alg
		t.Run(name, func(t *testing.T) {
			old, err := repro.RunTreeMIS(r, preds, alg, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := repro.RunProblem(g, "tree", name, preds, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, old.Run, gen.Run)
			assertSame(t, old.InSet, gen.Output)
		})
	}
}

func TestShimParityMatching(t *testing.T) {
	g := repro.GNP(40, 0.12, repro.NewRand(4242))
	preds := repro.PerturbMatching(g, repro.PerfectMatching(g), 5, repro.NewRand(3))
	algs := map[string]repro.MatchingAlgorithm{
		"greedy":      repro.MatchingGreedy,
		"simple":      repro.MatchingSimple,
		"collect":     repro.MatchingSimpleCollect,
		"consecutive": repro.MatchingConsecutive,
		"parallel":    repro.MatchingParallel,
	}
	for name, alg := range algs {
		name, alg := name, alg
		t.Run(name, func(t *testing.T) {
			old, err := repro.RunMatching(g, preds, alg, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := repro.RunProblem(g, "matching", name, preds, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, old.Run, gen.Run)
			assertSame(t, old.Partner, gen.Output)
		})
	}
}

func TestShimParityVColor(t *testing.T) {
	g := repro.GNP(40, 0.12, repro.NewRand(4242))
	preds := repro.PerturbVColor(g, repro.PerfectVColor(g), 5, repro.NewRand(3))
	algs := map[string]repro.VColorAlgorithm{
		"greedy":      repro.VColorGreedy,
		"simple":      repro.VColorSimple,
		"linial":      repro.VColorSimpleLinial,
		"consecutive": repro.VColorConsecutive,
		"standalone":  repro.VColorLinial,
		"interleaved": repro.VColorInterleaved,
		"parallel":    repro.VColorParallel,
	}
	for name, alg := range algs {
		name, alg := name, alg
		t.Run(name, func(t *testing.T) {
			old, err := repro.RunVColor(g, preds, alg, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := repro.RunProblem(g, "vcolor", name, preds, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, old.Run, gen.Run)
			assertSame(t, old.Color, gen.Output)
		})
	}
}

func TestShimParityEColor(t *testing.T) {
	g := repro.GNP(40, 0.12, repro.NewRand(4242))
	preds := repro.PerturbEColor(g, repro.PerfectEColor(g), 5, repro.NewRand(3))
	algs := map[string]repro.EColorAlgorithm{
		"greedy":      repro.EColorGreedy,
		"simple":      repro.EColorSimple,
		"collect":     repro.EColorSimpleCollect,
		"consecutive": repro.EColorConsecutive,
		"parallel":    repro.EColorParallel,
	}
	for name, alg := range algs {
		name, alg := name, alg
		t.Run(name, func(t *testing.T) {
			old, err := repro.RunEColor(g, preds, alg, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := repro.RunProblem(g, "ecolor", name, preds, parityOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, old.Run, gen.Run)
			assertSame(t, old.EdgeColor, gen.EdgeOutput)
		})
	}
}

func TestShimParityRecovery(t *testing.T) {
	problems := map[string]repro.Problem{
		"mis":      repro.ProblemMIS,
		"matching": repro.ProblemMatching,
		"vcolor":   repro.ProblemVColor,
	}
	for name, prob := range problems {
		name, prob := name, prob
		t.Run(name, func(t *testing.T) {
			g := repro.GNP(35, 0.15, repro.NewRand(99))
			preds, err := repro.GeneratePreds(name, g, 6, 100)
			if err != nil {
				t.Fatal(err)
			}
			chaosOpts := func() repro.Options {
				return repro.Options{
					MaxRounds: 60,
					Adversary: repro.NewChaos(repro.ChaosPolicy{Seed: 12, Drop: 0.3, Crash: 0.1}),
				}
			}
			old, err := repro.RunWithRecovery(g, prob, preds.([]int), chaosOpts())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := repro.RunProblemWithRecovery(g, name, preds, chaosOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, old, gen)
		})
	}
}
