package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// The stress suite runs the main algorithms at sizes an order of magnitude
// beyond the unit tests, including the adversarial ascending-identifier
// regimes where the measure-uniform algorithms genuinely pay Θ(n) rounds.
// Skipped with -short.

func TestStressMISLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped with -short")
	}
	cases := []struct {
		name string
		g    *repro.Graph
	}{
		{"gnp-5000", repro.GNP(5000, 0.0015, repro.NewRand(1))},
		{"grid-70x70", repro.Grid2D(70, 70)},
		{"ring-4999", repro.Ring(4999)},
		{"ba-4000", repro.BarabasiAlbert(4000, 3, repro.NewRand(2))},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			perfect := repro.PerfectMIS(c.g)
			for _, flips := range []int{0, 50, c.g.N() / 2} {
				preds := repro.FlipBits(perfect, flips, repro.NewRand(int64(flips)))
				for _, alg := range []repro.MISAlgorithm{
					repro.MISSimple, repro.MISParallelColoring, repro.MISInterleavedDecomp,
				} {
					res, err := repro.RunMIS(c.g, preds, alg, repro.Options{Seed: 3, Parallel: true})
					if err != nil {
						t.Fatalf("alg %d flips %d: %v", alg, flips, err)
					}
					if flips == 0 && res.Run.Rounds > 3 {
						t.Errorf("alg %d: consistency broken at scale (%d rounds)", alg, res.Run.Rounds)
					}
				}
			}
		})
	}
}

func TestStressAdversarialLine(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped with -short")
	}
	n := 8192
	g := repro.Line(n)
	preds := repro.Uniform(n, 1)
	// Simple pays ~n rounds; Parallel stays at O(Δ + log* d).
	simple, err := repro.RunMIS(g, preds, repro.MISSimple, repro.Options{MaxRounds: 2 * n})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := repro.RunMIS(g, preds, repro.MISParallelColoring, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if simple.Run.Rounds < n/2 {
		t.Errorf("simple took only %d rounds on the adversarial line; expected ~n", simple.Run.Rounds)
	}
	if parallel.Run.Rounds > 100 {
		t.Errorf("parallel took %d rounds; expected O(Δ + log* d) ≈ dozens", parallel.Run.Rounds)
	}
}

func TestStressAllProblemsOneNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped with -short")
	}
	g := repro.GNP(2000, 0.003, repro.NewRand(9))
	if _, err := repro.RunMatching(g, repro.PerturbMatching(g, repro.PerfectMatching(g), 40, repro.NewRand(1)),
		repro.MatchingSimple, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunVColor(g, repro.PerturbVColor(g, repro.PerfectVColor(g), 40, repro.NewRand(2)),
		repro.VColorSimple, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunEColor(g, repro.PerturbEColor(g, repro.PerfectEColor(g), 40, repro.NewRand(3)),
		repro.EColorSimple, repro.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestStressTreeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped with -short")
	}
	for _, n := range []int{5000, 20000} {
		r := repro.RandomRooted(n, repro.NewRand(int64(n)))
		preds := repro.FlipBits(repro.PerfectMIS(r.G), n/100, repro.NewRand(4))
		res, err := repro.RunTreeMIS(r, preds, repro.TreeParallel, repro.Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		etaT := repro.TreeEtaT(r, preds)
		limit := (etaT+1)/2 + 5
		// The parallel variant is bounded by min{ceil(etaT/2)+5, O(log* d)}.
		if res.Run.Rounds > limit && res.Run.Rounds > 60 {
			t.Errorf("n=%d: %d rounds, etaT=%d", n, res.Run.Rounds, etaT)
		}
	}
}

func TestStressEngineParityLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped with -short")
	}
	g := repro.GNP(3000, 0.002, repro.NewRand(11))
	preds := repro.FlipBits(repro.PerfectMIS(g), 100, repro.NewRand(12))
	seq, err := repro.RunMIS(g, preds, repro.MISSimple, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := repro.RunMIS(g, preds, repro.MISSimple, repro.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Run.Rounds != par.Run.Rounds || fmt.Sprint(seq.InSet) != fmt.Sprint(par.InSet) {
		t.Error("engine modes disagree at scale")
	}
}
