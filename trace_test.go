package repro_test

import (
	"testing"

	"repro"
	"repro/internal/obs"
)

// traceProblem runs one (problem, algorithm) configuration with a fresh
// recorder on the chosen engine and returns the recorded events.
func traceProblem(t *testing.T, problem, alg string, parallel, heal bool, seed int64) []repro.TraceEvent {
	t.Helper()
	g := repro.GNP(80, 0.08, repro.NewRand(seed))
	preds, err := repro.GeneratePreds(problem, g, 10, seed+1)
	if err != nil {
		t.Fatalf("GeneratePreds(%s): %v", problem, err)
	}
	rec := repro.NewTraceRecorder(0)
	opts := repro.Options{
		Parallel:  parallel,
		Seed:      seed,
		Trace:     rec,
		Recover:   heal,
		MaxRounds: 80,
	}
	if heal {
		opts.Adversary = repro.NewChaos(repro.ChaosPolicy{
			Seed:      seed + 2,
			Drop:      0.3,
			Duplicate: 0.15,
			Crash:     0.1,
		})
	}
	if _, err := repro.RunProblem(g, problem, alg, preds, opts); err != nil {
		t.Fatalf("RunProblem(%s/%s, parallel=%v): %v", problem, alg, parallel, err)
	}
	return rec.Events()
}

// TestTracePublicParity pins the determinism contract at the public API: for
// a fixed seed the sequential and worker-pool engines record identical event
// streams (durations excepted) — clean template runs and a chaotic
// self-healing run alike.
func TestTracePublicParity(t *testing.T) {
	cases := []struct {
		name         string
		problem, alg string
		heal         bool
	}{
		{"mis-simple", "mis", "simple", false},
		{"mis-parallel-template", "mis", "parallel", false},
		{"vcolor-simple", "vcolor", "simple", false},
		{"mis-heal-chaos", "mis", "simple", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := traceProblem(t, tc.problem, tc.alg, false, tc.heal, 11)
			pool := traceProblem(t, tc.problem, tc.alg, true, tc.heal, 11)
			if len(seq) == 0 {
				t.Fatal("sequential run recorded no events")
			}
			if i, desc, ok := obs.Diff(obs.Canonical(seq), obs.Canonical(pool)); !ok {
				t.Fatalf("engine traces diverge at event %d: %s", i, desc)
			}
			if tc.heal {
				sum := obs.Summarize(seq)
				if len(sum.Runs) < 2 {
					t.Fatalf("heal trace holds %d runs, want primary + recovery", len(sum.Runs))
				}
				if len(sum.Marks) == 0 {
					t.Fatal("heal trace carries no phase marks")
				}
			}
		})
	}
}

// TestTraceSummarizeBounds checks that summarizing a traced run reproduces
// the paper's stage round bounds: the Simple Template's initialization
// stages declare their budgets (3 rounds for MIS, 2 for vertex coloring) and
// the observed spans stay within them.
func TestTraceSummarizeBounds(t *testing.T) {
	wantInit := map[string]struct {
		stage  string
		budget int64
	}{
		"mis":    {"mis/init", 3},
		"vcolor": {"vcolor/init", 2},
	}
	for problem, want := range wantInit {
		events := traceProblem(t, problem, "simple", false, false, 29)
		sum := obs.Summarize(events)
		var found *obs.PhaseSummary
		for i := range sum.Phases {
			if sum.Phases[i].Name == want.stage {
				found = &sum.Phases[i]
				break
			}
		}
		if found == nil {
			t.Fatalf("%s: stage %q missing from summary phases %+v", problem, want.stage, sum.Phases)
		}
		if found.Budget != want.budget {
			t.Errorf("%s: stage %q budget = %d, want %d", problem, want.stage, found.Budget, want.budget)
		}
		if found.OverBudget() {
			t.Errorf("%s: stage %q ran %d rounds, over its declared budget %d",
				problem, want.stage, found.Rounds(), found.Budget)
		}
		if found.Entries == 0 {
			t.Errorf("%s: stage %q recorded no node-rounds", problem, want.stage)
		}
		if sum.Meta != problem+"/simple" {
			t.Errorf("%s: trace meta = %q, want %q", problem, sum.Meta, problem+"/simple")
		}
	}
}

// TestTraceEtaTrajectory checks the η trajectory of a healed run at the
// public API: an input snapshot, the carved residual, and the terminal
// healed-to-zero point, in that order.
func TestTraceEtaTrajectory(t *testing.T) {
	events := traceProblem(t, "mis", "simple", false, true, 13)
	sum := obs.Summarize(events)
	if sum.Runs[0].Err == "" && len(sum.Runs) == 1 {
		t.Skip("chaos did not damage the run; no trajectory to check")
	}
	var names []string
	for _, e := range sum.Etas {
		names = append(names, e.Name)
	}
	want := []string{"input", "residual", "healed"}
	if len(names) != len(want) {
		t.Fatalf("eta trajectory = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("eta trajectory = %v, want %v", names, want)
		}
	}
	if last := sum.Etas[len(sum.Etas)-1]; last.Value != 0 {
		t.Errorf("healed η = %d, want 0", last.Value)
	}
}
